// Package shards is the scale-out benchmark suite behind -serve-shards:
// it measures how session throughput scales with the shard count on the
// virtual clock, and how a forked arena's resident shadow footprint
// tracks the pages its tenant actually dirties. The committed artifact is
// BENCH_shards.json.
//
// It lives outside package bench because it drives the real service
// layer (service imports bench for its sanitizer-label registry, so
// bench cannot import service back).
//
// Methodology. Wall-clock scaling on a CI box says more about the box
// than the code, so the suite bills every session on the deterministic
// virtual clock (the same bench.VirtualCost model the service charges
// deadlines on) and measures makespan: route the session batch through a
// real ShardSet, then take the slowest shard's summed virtual bill.
// One shard's makespan is the whole batch run back to back; N shards'
// makespan is the critical path of the consistent-hash placement. The
// speedup column is therefore a statement about routing balance — the
// only thing sharding itself controls — and is byte-identical across
// machines and runs. Run also re-checks the determinism contract while
// it is at it: every session must produce the identical status, virtual
// bill, checksum and stats at every shard count, or the run fails.
package shards

import (
	"fmt"

	"giantsan/internal/instrument"
	"giantsan/internal/interp"
	"giantsan/internal/rt"
	"giantsan/internal/service"
	"giantsan/internal/shadow"
	"giantsan/internal/texttable"
	"giantsan/internal/workload"
)

// DefaultTenants is the tenant population the scaling side routes. Large
// enough that consistent-hash placement noise averages out, small enough
// to keep the suite in smoke-test territory.
const DefaultTenants = 96

// scalingWorkloads is the session mix, reused round-robin across the
// tenant population: the same four kernels the tiers suite bills, so
// every protection mode carries weight in the per-shard load.
func scalingWorkloads() []string {
	return []string{"505.mcf_r", "523.xalancbmk_r", "519.lbm_r", "557.xz_r"}
}

// ScalingRow is one shard count's measurement.
type ScalingRow struct {
	Shards   int `json:"shards"`
	Sessions int `json:"sessions"`
	// TotalVirtualNs is the summed virtual bill of every session —
	// identical at every shard count (sharding moves work, never changes
	// it; Run enforces this).
	TotalVirtualNs int64 `json:"totalVirtualNs"`
	// MakespanNs is the slowest shard's summed virtual bill: the batch's
	// virtual completion time with every shard draining in parallel.
	MakespanNs int64 `json:"makespanNs"`
	// Speedup is row-1's makespan over this row's (1.0 for one shard).
	Speedup float64 `json:"speedup"`
	// SessionsPerShard is the placement histogram.
	SessionsPerShard []int `json:"sessionsPerShard"`
}

// ResidencyRow records one forked arena's shadow footprint after running
// a session, against the dense arena it replaces.
type ResidencyRow struct {
	Workload string `json:"workload"`
	// HeapBytes is the arena size the tenant was given (the workload
	// touches the same amount regardless, so growing it shows residency
	// tracking use, not capacity).
	HeapBytes uint64 `json:"heapBytes"`
	// DirtyPages and ResidentBytes are Env.OverlayStats after the run:
	// privatized 4 KiB shadow pages and their bytes.
	DirtyPages    int `json:"dirtyPages"`
	ResidentBytes int `json:"residentBytes"`
	// DenseShadowBytes is what a dense New arena pays up front.
	DenseShadowBytes int `json:"denseShadowBytes"`
	// ResidentShare is ResidentBytes / DenseShadowBytes.
	ResidentShare float64 `json:"residentShare"`
	// PostResetPages is DirtyPages after Env.Reset: the overlay-drop
	// reset path must return the fork to zero resident shadow.
	PostResetPages int `json:"postResetPages"`
}

// Report is the BENCH_shards.json payload.
type Report struct {
	Tenants   int            `json:"tenants"`
	Workloads []string       `json:"workloads"`
	Scaling   []ScalingRow   `json:"scaling"`
	Residency []ResidencyRow `json:"residency"`
}

type outcome struct {
	status    string
	virtualNs int64
	checksum  string
	errors    int
}

// Run measures virtual-clock makespan at each shard count (counts[0] is
// the speedup baseline, conventionally 1) and the forked-arena residency
// table. tenants <= 0 means DefaultTenants.
func Run(counts []int, tenants int) (*Report, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	if tenants <= 0 {
		tenants = DefaultTenants
	}
	rep := &Report{Tenants: tenants, Workloads: scalingWorkloads()}

	reqs := make([]service.Request, tenants)
	for i := range reqs {
		reqs[i] = service.Request{
			Workload:  rep.Workloads[i%len(rep.Workloads)],
			Sanitizer: "giantsan",
			Tenant:    fmt.Sprintf("tenant-%d", i),
		}
	}

	var baseline []outcome
	for ri, n := range counts {
		set := service.NewShardSet(n, service.Config{Workers: 1, QueueDepth: tenants})
		row := ScalingRow{Shards: set.NumShards(), Sessions: tenants,
			SessionsPerShard: make([]int, set.NumShards())}
		perShard := make([]int64, set.NumShards())
		outs := make([]outcome, tenants)
		for i, req := range reqs {
			resp, err := set.Submit(req)
			if err != nil {
				set.Close()
				return nil, fmt.Errorf("shards=%d tenant-%d: %w", n, i, err)
			}
			if resp.Status != service.StatusOK {
				set.Close()
				return nil, fmt.Errorf("shards=%d tenant-%d: status %s (%s)", n, i, resp.Status, resp.Message)
			}
			row.TotalVirtualNs += resp.VirtualNs
			perShard[resp.Shard] += resp.VirtualNs
			row.SessionsPerShard[resp.Shard]++
			outs[i] = outcome{resp.Status, resp.VirtualNs, resp.Checksum, resp.ErrorTotal}
		}
		set.Close()
		for _, ns := range perShard {
			if ns > row.MakespanNs {
				row.MakespanNs = ns
			}
		}
		// The determinism contract: shard placement must be the only
		// thing that changed since the baseline count.
		if ri == 0 {
			baseline = outs
		} else {
			for i, o := range outs {
				if o != baseline[i] {
					return nil, fmt.Errorf("shards=%d tenant-%d diverges from shards=%d: %+v vs %+v",
						n, i, counts[0], o, baseline[i])
				}
			}
		}
		if ri == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = float64(rep.Scaling[0].MakespanNs) / float64(row.MakespanNs)
		}
		rep.Scaling = append(rep.Scaling, row)
	}

	res, err := residency()
	if err != nil {
		return nil, err
	}
	rep.Residency = res
	return rep, nil
}

// residency runs one session per (workload, arena size) on a freshly
// forked arena and records its overlay footprint. Growing the arena with
// the workload fixed is the point: a dense arena's shadow cost scales
// with capacity, a fork's with use.
func residency() ([]ResidencyRow, error) {
	var rows []ResidencyRow
	for _, id := range []string{"505.mcf_r", "557.xz_r"} {
		w := workload.ByID(id)
		if w == nil {
			return nil, fmt.Errorf("shards: unknown residency workload %q", id)
		}
		for _, heap := range []uint64{w.HeapBytes, 64 << 20, 256 << 20} {
			if heap < w.HeapBytes {
				continue
			}
			env := rt.Fork(rt.Config{Kind: rt.GiantSan, HeapBytes: heap})
			ex, err := interp.Prepare(w.Build(1), instrument.GiantSanProfile, env)
			if err != nil {
				return nil, fmt.Errorf("shards: residency %s: %w", id, err)
			}
			res := ex.Run()
			if res.Errors.Total() != 0 {
				return nil, fmt.Errorf("shards: residency %s: clean workload reported %d errors", id, res.Errors.Total())
			}
			pages, bytes := env.OverlayStats()
			dense := env.ShadowBytes()
			row := ResidencyRow{
				Workload:         id,
				HeapBytes:        heap,
				DirtyPages:       pages,
				ResidentBytes:    bytes,
				DenseShadowBytes: dense,
				ResidentShare:    float64(bytes) / float64(dense),
			}
			env.Reset()
			row.PostResetPages, _ = env.OverlayStats()
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Check is the CI gate over a report: near-linear scaling (the highest
// shard count must reach minSpeedup), work conservation across shard
// counts, and residency's proportionality invariants — resident bytes
// exactly PageBytes per dirtied page, strictly below the dense cost, and
// zero after Reset.
func Check(rep *Report, minSpeedup float64) error {
	if len(rep.Scaling) < 2 {
		return fmt.Errorf("shards: scaling has %d rows, want >= 2", len(rep.Scaling))
	}
	total := rep.Scaling[0].TotalVirtualNs
	for _, row := range rep.Scaling {
		if row.TotalVirtualNs != total {
			return fmt.Errorf("shards: total virtual ns drifts across shard counts: %d at %d shards vs %d at %d",
				row.TotalVirtualNs, row.Shards, total, rep.Scaling[0].Shards)
		}
	}
	last := rep.Scaling[len(rep.Scaling)-1]
	if last.Speedup < minSpeedup {
		return fmt.Errorf("shards: %d shards reached %.2fx, want >= %.2fx", last.Shards, last.Speedup, minSpeedup)
	}
	if len(rep.Residency) == 0 {
		return fmt.Errorf("shards: residency table is empty")
	}
	for _, r := range rep.Residency {
		if r.ResidentBytes != r.DirtyPages*shadow.PageBytes {
			return fmt.Errorf("shards: %s @ %d MiB: resident %d bytes != %d dirty pages x %d",
				r.Workload, r.HeapBytes>>20, r.ResidentBytes, r.DirtyPages, shadow.PageBytes)
		}
		if r.ResidentBytes >= r.DenseShadowBytes {
			return fmt.Errorf("shards: %s @ %d MiB: resident %d bytes not below dense %d",
				r.Workload, r.HeapBytes>>20, r.ResidentBytes, r.DenseShadowBytes)
		}
		if r.PostResetPages != 0 {
			return fmt.Errorf("shards: %s @ %d MiB: %d overlay pages survive Reset",
				r.Workload, r.HeapBytes>>20, r.PostResetPages)
		}
	}
	return nil
}

// Render renders the report as tables.
func Render(rep *Report) string {
	tb := texttable.New("Shards", "Sessions", "Makespan", "Speedup", "Placement")
	for _, r := range rep.Scaling {
		tb.Add(fmt.Sprintf("%d", r.Shards), fmt.Sprintf("%d", r.Sessions),
			fmt.Sprintf("%dns", r.MakespanNs), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%v", r.SessionsPerShard))
	}
	rt := texttable.New("Workload", "Heap", "DirtyPages", "Resident", "Dense", "Share", "PostReset")
	for _, r := range rep.Residency {
		rt.Add(r.Workload, fmt.Sprintf("%dMiB", r.HeapBytes>>20),
			fmt.Sprintf("%d", r.DirtyPages),
			fmt.Sprintf("%dB", r.ResidentBytes), fmt.Sprintf("%dB", r.DenseShadowBytes),
			fmt.Sprintf("%.4f", r.ResidentShare), fmt.Sprintf("%d", r.PostResetPages))
	}
	return tb.String() + "\n" + rt.String()
}
