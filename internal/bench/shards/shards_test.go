package shards

import (
	"encoding/json"
	"testing"
)

// TestRunInvariants exercises a reduced scaling batch end to end and
// holds it to the same invariants the CI gate checks: work conservation
// across shard counts, monotone makespan, residency proportional to
// dirtied pages, overlay gone after Reset.
func TestRunInvariants(t *testing.T) {
	rep, err := Run([]int{1, 2}, 24)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := Check(rep, 1.2); err != nil {
		t.Fatalf("Check: %v", err)
	}
	one, two := rep.Scaling[0], rep.Scaling[1]
	if one.MakespanNs != one.TotalVirtualNs {
		t.Fatalf("1-shard makespan %d != total %d", one.MakespanNs, one.TotalVirtualNs)
	}
	if two.MakespanNs >= one.MakespanNs {
		t.Fatalf("2-shard makespan %d not below 1-shard %d", two.MakespanNs, one.MakespanNs)
	}
	placed := 0
	for _, n := range two.SessionsPerShard {
		placed += n
	}
	if placed != 24 {
		t.Fatalf("placement histogram sums to %d, want 24", placed)
	}
}

// TestRunIsDeterministic pins the artifact contract: two runs of the
// same batch serialize byte-identically (the suite is entirely on the
// virtual clock).
func TestRunIsDeterministic(t *testing.T) {
	a, err := Run([]int{1, 2}, 12)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run([]int{1, 2}, 12)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("reports differ across identical runs:\n%s\n%s", ja, jb)
	}
}
