package bench

import (
	"reflect"
	"testing"
)

// TestTierLadderResolution pins the ladder shape and the label registry
// the service layer depends on.
func TestTierLadderResolution(t *testing.T) {
	tiers := Tiers()
	wantOrder := []string{"full", "elim", "cheap", "sampled"}
	if len(tiers) != len(wantOrder) {
		t.Fatalf("ladder has %d rungs, want %d", len(tiers), len(wantOrder))
	}
	for i, tr := range tiers {
		if tr.Name != wantOrder[i] {
			t.Fatalf("rung %d = %q, want %q", i, tr.Name, wantOrder[i])
		}
		if TierByName(tr.Name) == nil {
			t.Fatalf("TierByName(%q) = nil", tr.Name)
		}
		if ConfigByLabel(tr.Config.Label) == nil {
			t.Fatalf("ConfigByLabel(%q) = nil; tier sanitizers must be resolvable", tr.Config.Label)
		}
	}
	if TierByName("turbo") != nil {
		t.Fatal("unknown tier resolved")
	}
	// Every Table 2 column stays resolvable too.
	for _, c := range Configs() {
		if ConfigByLabel(c.Label) == nil {
			t.Fatalf("ConfigByLabel(%q) = nil", c.Label)
		}
	}
	if SampledConfig(8).Profile.SampleRate != 8 {
		t.Fatal("SampledConfig(8) lost its rate")
	}
}

// TestTiersMonotoneCostAndDetection is the committed-artifact contract:
// virtual cost strictly decreases down the ladder while detection only
// ever decreases, and the cheapest tier still detects. This is the same
// gate `giantbench -exp tiers -tiers-check` applies in CI.
func TestTiersMonotoneCostAndDetection(t *testing.T) {
	seeds := 60
	if raceEnabled {
		// The race build only needs to exercise the concurrent run paths;
		// the full 60-seed statistics are gated without -race by CI's
		// `giantbench -exp tiers -tiers-check`.
		seeds = 16
	}
	rep, err := TiersRun(seeds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(rep); err != nil {
		t.Fatal(err)
	}
	// The top three rungs are detection-preserving: full coverage on the
	// whole planted-bug corpus. Only the sampled rung may miss.
	for _, row := range rep.Rows[:3] {
		if row.Detected != row.CorpusCases {
			t.Fatalf("tier %s missed %d/%d planted bugs; only the sampled tier may miss",
				row.Tier, row.CorpusCases-row.Detected, row.CorpusCases)
		}
	}
	last := rep.Rows[len(rep.Rows)-1]
	if last.Tier != "sampled" || last.CheckShare >= 0.5 {
		t.Fatalf("sampled tier checkShare = %.3f, want < 0.5 (rate %d)", last.CheckShare, DefaultSampleRate)
	}
}

// TestTiersDeterministicAcrossParallel: the sampled gate keys on the
// session-local access index and every matrix item owns its runtime, so
// the whole report — including which corpus bugs the sampled tier hits —
// is identical at -parallel 1 and -parallel 8.
func TestTiersDeterministicAcrossParallel(t *testing.T) {
	seeds := 30
	if raceEnabled {
		seeds = 10
	}
	serial, err := TiersRun(seeds, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := TiersRun(seeds, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("tiers report diverged across parallelism:\nserial %+v\nwide   %+v", serial, wide)
	}
}
