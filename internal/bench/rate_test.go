package bench

import (
	"runtime"
	"testing"

	"giantsan/internal/workload"
)

func TestRateRun(t *testing.T) {
	w := workload.ByID("505.mcf_r")
	cfg := Configs()[1] // giantsan
	res, err := RateRun(w, cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Copies != 4 || res.Elapsed <= 0 || res.Throughput <= 0 {
		t.Errorf("RateResult = %+v", res)
	}
}

// TestRateScalesThroughput: concurrent copies must finish in well under
// copies× the single-copy time when cores are available (the runtimes are
// independent; a shared lock would serialize them). On a single-CPU
// machine there is nothing to measure beyond correctness.
func TestRateScalesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 2 {
		t.Skip("needs ≥ 2 CPUs to observe parallel speedup")
	}
	w := workload.ByID("519.lbm_r")
	cfg := Configs()[1]
	one, err := RateRun(w, cfg, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := RateRun(w, cfg, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.Elapsed > 3*one.Elapsed {
		t.Errorf("4 copies took %v vs single %v: copies appear serialized", four.Elapsed, one.Elapsed)
	}
}
