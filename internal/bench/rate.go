package bench

import (
	"fmt"
	"sync"
	"time"

	"giantsan/internal/interp"
	"giantsan/internal/workload"
)

// RateResult is one SPEC-rate-style measurement: N concurrent copies of a
// program, each in its own simulated address space, as SPEC's rate suite
// runs N process copies.
type RateResult struct {
	Copies  int
	Elapsed time.Duration
	// Throughput is copies per second of wall time.
	Throughput float64
}

// RateRun executes copies instances of (workload, config) concurrently.
// Each copy owns a full runtime (space, shadow, allocators), so the copies
// interact only through the machine — the same contention profile as
// SPEC's rate mode.
func RateRun(w *workload.Workload, cfg SanConfig, scale, copies int) (RateResult, error) {
	type outcome struct {
		res *interp.Result
		err error
	}
	// Compile all copies up front so the timed section is execution only.
	execs := make([]*interp.Exec, copies)
	for i := range execs {
		env := newRuntime(cfg, w, scale)
		ex, err := interp.Prepare(w.Build(scale), cfg.Profile, env)
		if err != nil {
			return RateResult{}, err
		}
		execs[i] = ex
	}
	outs := make([]outcome, copies)
	start := time.Now()
	var wg sync.WaitGroup
	for i, ex := range execs {
		wg.Add(1)
		go func(i int, ex *interp.Exec) {
			defer wg.Done()
			res := ex.Run()
			outs[i] = outcome{res: res}
			if res.Errors.Total() != 0 {
				outs[i].err = fmt.Errorf("copy %d reported %d errors", i, res.Errors.Total())
			}
		}(i, ex)
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := RateResult{
		Copies:     copies,
		Elapsed:    elapsed,
		Throughput: float64(copies) / elapsed.Seconds(),
	}
	// The run completed and was measured even if copies reported errors:
	// return the measurement alongside the failure. outs is scanned in
	// copy order, so the reported error is always the lowest-index
	// failing copy, independent of goroutine completion order.
	for _, o := range outs {
		if o.err != nil {
			return res, o.err
		}
	}
	return res, nil
}
