package metapath

import (
	"fmt"
	"strings"
	"testing"
)

// TestMetapathMatrix runs the full matrix at a small batch size and checks
// the structural invariants: every cell present, sane measurements, the
// speedup table fully populated, and — the fast lane's core contract —
// shadow-stores/op byte-identical between each specialized config and its
// reference twin (the churn traces are deterministic, so the conceptual
// poisoning work must match exactly).
func TestMetapathMatrix(t *testing.T) {
	rep, err := Run(64)
	if err != nil {
		t.Fatal(err)
	}
	want := len(Configs()) * len(Churns()) * len(Classes())
	if len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}
	byKey := map[string]Row{}
	for _, r := range rep.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s/%d: non-positive ns/op", r.Sanitizer, r.Churn, r.Class)
		}
		if r.ShadowStoresPerOp <= 0 {
			t.Errorf("%s/%s/%d: no shadow stores measured", r.Sanitizer, r.Churn, r.Class)
		}
		byKey[fmt.Sprintf("%s/%s/%d", r.Sanitizer, r.Churn, r.Class)] = r
	}
	for _, base := range []string{"giantsan", "asan"} {
		for _, ch := range Churns() {
			if _, ok := rep.Speedup[base+"/"+ch.Name]; !ok {
				t.Errorf("missing geomean speedup for %s/%s", base, ch.Name)
			}
			for _, class := range Classes() {
				key := fmt.Sprintf("%s/%s/%d", base, ch.Name, class)
				if _, ok := rep.Speedup[key]; !ok {
					t.Errorf("missing speedup entry %s", key)
				}
				fast, ref := byKey[key], byKey[fmt.Sprintf("%s-ref/%s/%d", base, ch.Name, class)]
				if fast.ShadowStoresPerOp != ref.ShadowStoresPerOp {
					t.Errorf("%s: shadow-stores/op %.2f fast vs %.2f reference — the paths must bill identical conceptual work",
						key, fast.ShadowStoresPerOp, ref.ShadowStoresPerOp)
				}
			}
		}
	}
	if err := AssertFloor(rep, -1, "giantsan/tcache-hit", "giantsan/quarantine-recycle"); err != nil {
		t.Errorf("gate keys missing: %v", err)
	}
	if err := AssertFloor(rep, 1e9, "giantsan/fresh"); err == nil {
		t.Error("AssertFloor accepted an impossible floor")
	}
	out := Render(rep)
	for _, wantStr := range []string{"tcache-hit", "quarantine-recycle", "stack-frame", "vs reference path"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("render missing %q", wantStr)
		}
	}
}

// BenchmarkMetapath exposes each (config, churn) pair to the standard Go
// benchmark harness at the 96-byte class, so `go test -bench` can profile
// the allocation metadata path directly.
func BenchmarkMetapath(b *testing.B) {
	const class = 96
	for _, cfg := range Configs() {
		for _, ch := range Churns() {
			b.Run(cfg.Label+"/"+ch.Name, func(b *testing.B) {
				run, _, err := ch.Build(cfg.Kind, cfg.Reference, class)
				if err != nil {
					b.Fatal(err)
				}
				const batch = 512
				b.ResetTimer()
				for done := 0; done < b.N; done += batch {
					n := batch
					if rem := b.N - done; rem < n {
						n = rem
					}
					if err := run(n); err != nil {
						// The arena drained: rebuild outside the timer.
						b.StopTimer()
						run, _, err = ch.Build(cfg.Kind, cfg.Reference, class)
						if err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
						if err := run(n); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		}
	}
}
