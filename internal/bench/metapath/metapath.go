// Package metapath microbenchmarks the allocation metadata path in
// isolation: no instrumented program, just tight malloc/free (and stack
// push/pop) churn against the real allocators. Checking is GiantSan's
// strength; poisoning — rebuilding the fold ladder and redzones on every
// allocation — is the overhead the paper concedes on allocation-heavy
// workloads. This suite measures that cost as ns per allocate/release
// operation and shadow-stores per operation, per sanitizer × size class ×
// churn pattern, and reports the speedup of the templated fast lane
// (precomputed fold templates, word-wide fills, batched refill/eviction
// sweeps) over the reference writers, which ARE the pre-PR poisoning code.
//
// The results land in BENCH_metapath.json via `giantbench -metapath`;
// `go test -bench=Metapath ./internal/bench/metapath` runs the same matrix
// under the standard Go benchmark harness. ASan-- shares ASan's runtime
// poisoner and LFP has no shadow poisoner, so the matrix covers GiantSan
// and ASan, each in specialized and reference form.
package metapath

import (
	"fmt"
	"math"
	"time"

	"giantsan/internal/rt"
	"giantsan/internal/san"
	"giantsan/internal/texttable"
)

// HeapBytes sizes each measurement arena. Batches rebuild their
// environment, so the arena only needs to absorb one batch of churn.
const HeapBytes = 8 << 20

// FrameLocals is how many locals of the size class one stack-frame op
// pushes.
const FrameLocals = 4

// Churn is one allocation-lifecycle pattern. Build returns a fresh
// environment's op runner — run performs `ops` allocate/release
// operations — plus the live sanitizer counters. Environments are
// single-use: MeasureOne rebuilds one per timed batch, outside the timer,
// so arena exhaustion and warmup never leak into the measurement.
type Churn struct {
	Name  string
	Build func(kind rt.Kind, reference bool, class uint64) (run func(ops int) error, stats *san.Stats, err error)
}

func buildEnv(kind rt.Kind, reference bool, quarantine uint64) *rt.Env {
	return rt.New(rt.Config{
		Kind:            kind,
		HeapBytes:       HeapBytes,
		QuarantineBytes: quarantine,
		Reference:       reference,
	})
}

// Churns returns the benchmark churn patterns:
//
//   - fresh: every op mallocs a never-before-seen chunk and frees it into
//     an unbounded quarantine — pure bump allocation, every poisoning is a
//     first touch;
//   - tcache-hit: ops go through a thread cache with run refills, the
//     §4.5 steady state where the allocator itself is cheap and poisoning
//     dominates;
//   - quarantine-recycle: a small FIFO budget forces continuous eviction
//     sweeps and free-list reuse — the delayed-reuse steady state;
//   - stack-frame: each op pushes and pops a whole frame of FrameLocals
//     locals, the function-prologue pattern.
func Churns() []Churn {
	return []Churn{
		{Name: "fresh", Build: func(kind rt.Kind, reference bool, class uint64) (func(int) error, *san.Stats, error) {
			env := buildEnv(kind, reference, 1<<30)
			return func(ops int) error {
				for i := 0; i < ops; i++ {
					p, err := env.Malloc(class)
					if err != nil {
						return err
					}
					if rerr := env.Free(p); rerr != nil {
						return fmt.Errorf("free reported %v", rerr)
					}
				}
				return nil
			}, env.San().Stats(), nil
		}},
		{Name: "tcache-hit", Build: func(kind rt.Kind, reference bool, class uint64) (func(int) error, *san.Stats, error) {
			env := buildEnv(kind, reference, 0)
			tc := env.Heap().NewTCache()
			tc.RefillAt = 64
			tc.FlushAt = 64
			return func(ops int) error {
				for i := 0; i < ops; i++ {
					p, err := tc.Malloc(class)
					if err != nil {
						return err
					}
					if rerr := tc.Free(p); rerr != nil {
						return fmt.Errorf("tcache free reported %v", rerr)
					}
				}
				return nil
			}, env.San().Stats(), nil
		}},
		{Name: "quarantine-recycle", Build: func(kind rt.Kind, reference bool, class uint64) (func(int) error, *san.Stats, error) {
			// A budget of ~8 chunk footprints: frees continuously evict, and
			// mallocs recycle from the free list after a short warmup.
			env := buildEnv(kind, reference, 8*(class+64))
			return func(ops int) error {
				for i := 0; i < ops; i++ {
					p, err := env.Malloc(class)
					if err != nil {
						return err
					}
					if rerr := env.Free(p); rerr != nil {
						return fmt.Errorf("free reported %v", rerr)
					}
				}
				return nil
			}, env.San().Stats(), nil
		}},
		{Name: "stack-frame", Build: func(kind rt.Kind, reference bool, class uint64) (func(int) error, *san.Stats, error) {
			env := buildEnv(kind, reference, 0)
			st := env.Stack()
			sizes := make([]uint64, FrameLocals)
			for i := range sizes {
				sizes[i] = class
			}
			return func(ops int) error {
				for i := 0; i < ops; i++ {
					st.PushLocals(sizes...)
					st.Pop()
				}
				return nil
			}, env.San().Stats(), nil
		}},
	}
}

// Classes returns the benchmarked size classes: small (redzones dominate),
// the mid classes real allocators see most, and a page-scale object where
// the fold ladder is long.
func Classes() []uint64 { return []uint64{16, 96, 960, 4096} }

// Config is one benchmarked sanitizer configuration.
type Config struct {
	Label     string
	Kind      rt.Kind
	Reference bool
}

// Configs returns the matrix: each shadow sanitizer in specialized and
// reference form.
func Configs() []Config {
	return []Config{
		{"giantsan", rt.GiantSan, false},
		{"giantsan-ref", rt.GiantSan, true},
		{"asan", rt.ASan, false},
		{"asan-ref", rt.ASan, true},
	}
}

// Row is one (sanitizer, churn, class) measurement.
type Row struct {
	Sanitizer string `json:"sanitizer"`
	Churn     string `json:"churn"`
	Class     uint64 `json:"class"`
	// Ops is the operations per batch.
	Ops uint64 `json:"ops"`
	// NsPerOp is mean wall time per allocate/release operation.
	NsPerOp float64 `json:"nsPerOp"`
	// ShadowStoresPerOp is the conceptual metadata segment writes per
	// operation — the machine-independent poisoning cost, identical across
	// fast and reference paths.
	ShadowStoresPerOp float64 `json:"shadowStoresPerOp"`
}

// Report is the BENCH_metapath.json payload.
type Report struct {
	Ops     int      `json:"ops"`
	Classes []uint64 `json:"classes"`
	Rows    []Row    `json:"rows"`
	// Speedup maps "<sanitizer>/<churn>/<class>" to reference-ns ÷
	// specialized-ns, and "<sanitizer>/<churn>" to the geometric mean of
	// that churn's per-class speedups.
	Speedup map[string]float64 `json:"speedup"`
}

// MeasureOne measures one (config, churn, class) cell: one untimed warm
// batch (fills the template caches and yields shadow-stores/op), then
// timed batches — each on a freshly built environment, constructed outside
// the timer — until a minimum wall time has elapsed.
func MeasureOne(cfg Config, ch Churn, class uint64, ops int) (Row, error) {
	run, stats, err := ch.Build(cfg.Kind, cfg.Reference, class)
	if err != nil {
		return Row{}, err
	}
	before := stats.Clone()
	if err := run(ops); err != nil {
		return Row{}, fmt.Errorf("metapath: %s/%s/%d: %v", cfg.Label, ch.Name, class, err)
	}
	delta := stats.Sub(before)
	row := Row{Sanitizer: cfg.Label, Churn: ch.Name, Class: class, Ops: uint64(ops)}
	row.ShadowStoresPerOp = float64(delta.ShadowStores) / float64(ops)

	const minMeasure = 5 * time.Millisecond
	var elapsed time.Duration
	timed := 0
	for elapsed < minMeasure {
		run, _, err := ch.Build(cfg.Kind, cfg.Reference, class)
		if err != nil {
			return Row{}, err
		}
		start := time.Now()
		if err := run(ops); err != nil {
			return Row{}, fmt.Errorf("metapath: %s/%s/%d: %v", cfg.Label, ch.Name, class, err)
		}
		elapsed += time.Since(start)
		timed += ops
	}
	row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(timed)
	return row, nil
}

// Run executes the full matrix. ops ≤ 0 selects the default batch size.
func Run(ops int) (*Report, error) {
	if ops <= 0 {
		ops = 512
	}
	rep := &Report{Ops: ops, Classes: Classes(), Speedup: map[string]float64{}}
	for _, cfg := range Configs() {
		for _, ch := range Churns() {
			for _, class := range Classes() {
				row, err := MeasureOne(cfg, ch, class, ops)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	byKey := map[string]Row{}
	for _, r := range rep.Rows {
		byKey[fmt.Sprintf("%s/%s/%d", r.Sanitizer, r.Churn, r.Class)] = r
	}
	for _, base := range []string{"giantsan", "asan"} {
		for _, ch := range Churns() {
			prod, n := 1.0, 0
			for _, class := range Classes() {
				fast := byKey[fmt.Sprintf("%s/%s/%d", base, ch.Name, class)]
				ref := byKey[fmt.Sprintf("%s-ref/%s/%d", base, ch.Name, class)]
				if fast.NsPerOp > 0 && ref.NsPerOp > 0 {
					sp := ref.NsPerOp / fast.NsPerOp
					rep.Speedup[fmt.Sprintf("%s/%s/%d", base, ch.Name, class)] = sp
					prod *= sp
					n++
				}
			}
			if n > 0 {
				rep.Speedup[base+"/"+ch.Name] = math.Pow(prod, 1/float64(n))
			}
		}
	}
	return rep, nil
}

// AssertFloor fails when any of the named speedup entries is missing or
// below min — the CI sanity gate that the fast lane never regresses past
// its reference path.
func AssertFloor(rep *Report, min float64, keys ...string) error {
	for _, k := range keys {
		sp, ok := rep.Speedup[k]
		if !ok {
			return fmt.Errorf("metapath: no speedup entry %q", k)
		}
		if sp < min {
			return fmt.Errorf("metapath: speedup %s = %.2fx, below the %.2fx floor", k, sp, min)
		}
	}
	return nil
}

// Render formats a report as a text table followed by the per-churn
// geomean speedup lines.
func Render(rep *Report) string {
	tb := texttable.New("Sanitizer", "Churn", "Class", "ns/op", "ShadowStores/op")
	for _, r := range rep.Rows {
		tb.Add(r.Sanitizer, r.Churn, fmt.Sprintf("%d", r.Class),
			fmt.Sprintf("%.0f", r.NsPerOp), fmt.Sprintf("%.1f", r.ShadowStoresPerOp))
	}
	out := tb.String()
	for _, base := range []string{"giantsan", "asan"} {
		for _, ch := range Churns() {
			if sp, ok := rep.Speedup[base+"/"+ch.Name]; ok {
				out += fmt.Sprintf("%s %s: %.2fx vs reference path (geomean)\n", base, ch.Name, sp)
			}
		}
	}
	return out
}
