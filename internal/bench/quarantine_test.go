package bench

import (
	"hash/fnv"
	"reflect"
	"testing"

	"giantsan/internal/parallel"
	"giantsan/internal/rt"
	"giantsan/internal/shadow"
	"giantsan/internal/vmem"
)

// The quarantine study's results hinge on order: which chunk the FIFO
// evicts first decides which address the next malloc recycles, and every
// probe verdict is a poison-state read of that history. These tests pin
// that the study — and the eviction machinery it exercises, including the
// merged eviction sweeps — is bit-identical whether the parallel engine
// runs the budgets on one worker or eight.

// TestQuarantineAblationParallelDeterminism: same budgets, same pressure,
// any worker count → identical rows in budget order.
func TestQuarantineAblationParallelDeterminism(t *testing.T) {
	budgets := []uint64{96, 960, 9600, 96 * 200}
	one, err := QuarantineAblation(budgets, 150, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := QuarantineAblation(budgets, 150, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, eight) {
		t.Fatalf("rows diverged across worker counts:\n-parallel 1: %+v\n-parallel 8: %+v", one, eight)
	}
	for i, r := range one {
		if r.Budget != budgets[i] {
			t.Fatalf("row %d carries budget %d, want %d: merge is not index-ordered", i, r.Budget, budgets[i])
		}
	}
}

// quarantineChurnDigest runs a malloc/free churn that keeps the quarantine
// overflowing and folds every recycled address and the final shadow state
// into one hash. Eviction order decides the address sequence; the eviction
// sweeps and re-allocation templates decide the shadow bytes — so the
// digest moves if either FIFO order or a poison-state transition does.
func quarantineChurnDigest(budget uint64) uint64 {
	env := rt.New(rt.Config{Kind: rt.GiantSan, HeapBytes: 8 << 20, QuarantineBytes: budget})
	h := fnv.New64a()
	word := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	var live []vmem.Addr
	for i := 0; i < 800; i++ {
		p, err := env.Malloc(uint64(32 + 8*(i%7)))
		if err != nil {
			panic(err)
		}
		word(uint64(p))
		live = append(live, p)
		if len(live) > 6 {
			if rerr := env.Free(live[0]); rerr != nil {
				panic(rerr)
			}
			live = live[1:]
		}
	}
	h.Write(env.San().(interface{ Shadow() *shadow.Memory }).Shadow().Raw())
	return h.Sum64()
}

// TestQuarantineChurnDigestDeterminism: the same churn replayed under the
// parallel engine at -parallel 1 and -parallel 8 yields the same
// address-sequence + shadow digest for every budget. This is the guard
// against cross-environment state (the shared template caches) or sweep
// scheduling leaking nondeterminism into eviction order or poison-state
// transitions.
func TestQuarantineChurnDigestDeterminism(t *testing.T) {
	budgets := []uint64{64, 512, 4096, 1 << 20}
	run := func(workers int) []uint64 {
		digs, err := parallel.Map(len(budgets), parallel.Options{Workers: workers}, func(i int) (uint64, error) {
			return quarantineChurnDigest(budgets[i]), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return digs
	}
	one := run(1)
	eight := run(8)
	for i := range budgets {
		if one[i] != eight[i] {
			t.Errorf("budget %d: digest %#x at -parallel 1 but %#x at -parallel 8", budgets[i], one[i], eight[i])
		}
	}
}
