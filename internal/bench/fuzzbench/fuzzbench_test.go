package fuzzbench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunSmall: one campaign pair end to end, plus the determinism the
// committed BENCH_fuzz.json depends on — two runs at different worker
// bounds serialize identically.
func TestRunSmall(t *testing.T) {
	rep, err := Run(1, 1500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 4 || len(rep.Runs) != 2 {
		t.Fatalf("classes=%d runs=%d, want 4 and 2", len(rep.Classes), len(rep.Runs))
	}
	for _, row := range rep.Classes {
		if row.GuidedMean <= 0 || row.BlindMean <= 0 {
			t.Errorf("%s: non-positive means: %+v", row.Class, row)
		}
	}
	out := Render(rep)
	if !strings.Contains(out, "geomean blind/guided") {
		t.Errorf("render missing geomean line:\n%s", out)
	}
	rep8, err := Run(1, 1500, 8)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep)
	b8, _ := json.Marshal(rep8)
	if string(b1) != string(b8) {
		t.Error("report differs between -parallel 1 and -parallel 8")
	}
}

func TestCheck(t *testing.T) {
	rep := &Report{
		Campaigns: 3, Budget: 1000, Geomean: 2.0,
		Classes: []ClassRow{{Class: "overflow"}},
	}
	if err := Check(rep, 1.5); err != nil {
		t.Errorf("passing report rejected: %v", err)
	}
	rep.Geomean = 1.2
	if err := Check(rep, 1.5); err == nil {
		t.Error("low geomean accepted")
	}
	rep.Geomean = 2.0
	rep.Classes[0].GuidedCensored = 1
	if err := Check(rep, 1.5); err == nil {
		t.Error("guided censoring accepted")
	}
}
