// Package fuzzbench measures the value of sanitizer-guided fuzzing: the
// executions-to-detection comparison between the guided engine
// (internal/fuzz, feedback from shadow-state coverage and the near-miss
// gradient) and the blind ablation (identical mutation operators, no
// feedback). The metric is the paper-style one for fuzzers — how many
// executions until the first bug of each class surfaces — aggregated
// over several independent campaigns per mode and summarized as the
// per-class blind/guided ratio and its geometric mean.
//
// Everything is seeded and billed on the virtual clock, so the report
// committed as BENCH_fuzz.json is byte-identical across runs, machines,
// and -parallel levels. `giantbench -exp fuzz -fuzz-check` is the CI
// gate: it fails unless the guided engine detects every class in every
// campaign and the geomean ratio clears the floor.
package fuzzbench

import (
	"fmt"
	"math"
	"sort"

	"giantsan/internal/fuzz"
	"giantsan/internal/texttable"
)

// CampaignRow summarizes one campaign.
type CampaignRow struct {
	Mode       string         `json:"mode"`
	SeedBase   int64          `json:"seed_base"`
	Executions int            `json:"executions"`
	VirtualNs  int64          `json:"virtual_ns"`
	Detected   map[string]int `json:"detected"`
	CorpusSize int            `json:"corpus_size"`
	Features   int            `json:"features"`
	NearMiss   int            `json:"near_miss_runs"`
	Noise      int            `json:"noise"`
}

// ClassRow aggregates one bug class across campaigns. Campaigns that
// never detected the class are censored at the budget (the true count is
// at least that), which only understates the guided engine's advantage.
type ClassRow struct {
	Class      string  `json:"class"`
	GuidedMean float64 `json:"guided_mean_execs"`
	BlindMean  float64 `json:"blind_mean_execs"`
	// Ratio is blind/guided mean executions-to-detection: >1 means the
	// feedback earns its keep.
	Ratio float64 `json:"ratio"`
	// GuidedCensored/BlindCensored count campaigns where the class was
	// never detected inside the budget.
	GuidedCensored int `json:"guided_censored"`
	BlindCensored  int `json:"blind_censored"`
}

// Report is the committed BENCH_fuzz.json schema.
type Report struct {
	Campaigns int `json:"campaigns_per_mode"`
	Budget    int `json:"budget"`
	Seeds     int `json:"seeds_per_campaign"`
	// Geomean is the geometric mean of the per-class ratios — the
	// headline guided-vs-blind number the CI gate checks.
	Geomean float64       `json:"geomean_ratio"`
	Classes []ClassRow    `json:"classes"`
	Runs    []CampaignRow `json:"runs"`
}

// Run executes `campaigns` campaign pairs (guided and blind) with
// matching seed bases and aggregates executions-to-detection. parallel
// is each campaign's worker bound (0 = GOMAXPROCS; any value yields the
// identical report).
func Run(campaigns, budget, parallel int) (*Report, error) {
	if campaigns <= 0 {
		campaigns = 5
	}
	if budget <= 0 {
		budget = 4000
	}
	const seeds = 8
	rep := &Report{Campaigns: campaigns, Budget: budget, Seeds: seeds}
	detected := map[fuzz.Mode][]map[string]int{}
	for _, mode := range []fuzz.Mode{fuzz.Guided, fuzz.Blind} {
		for i := 0; i < campaigns; i++ {
			r, err := fuzz.Run(fuzz.Config{
				Mode:     mode,
				SeedBase: int64(i) * 100,
				Seeds:    seeds,
				Budget:   budget,
				Batch:    32,
				Parallel: parallel,
			})
			if err != nil {
				return nil, fmt.Errorf("fuzzbench: %s campaign %d: %w", mode, i, err)
			}
			rep.Runs = append(rep.Runs, CampaignRow{
				Mode:       r.Mode,
				SeedBase:   r.SeedBase,
				Executions: r.Executions,
				VirtualNs:  r.VirtualNs,
				Detected:   r.Detected,
				CorpusSize: r.CorpusSize,
				Features:   r.Features,
				NearMiss:   r.NearMissRuns,
				Noise:      r.Noise,
			})
			detected[mode] = append(detected[mode], r.Detected)
		}
	}

	for _, cls := range fuzz.Classes() {
		row := ClassRow{Class: cls}
		mean := func(mode fuzz.Mode, censored *int) float64 {
			sum := 0
			for _, d := range detected[mode] {
				n := d[cls]
				if n == 0 {
					n = budget
					*censored++
				}
				sum += n
			}
			return float64(sum) / float64(campaigns)
		}
		row.GuidedMean = mean(fuzz.Guided, &row.GuidedCensored)
		row.BlindMean = mean(fuzz.Blind, &row.BlindCensored)
		row.Ratio = row.BlindMean / row.GuidedMean
		rep.Classes = append(rep.Classes, row)
	}
	geo := 1.0
	for _, row := range rep.Classes {
		geo *= row.Ratio
	}
	rep.Geomean = math.Pow(geo, 1/float64(len(rep.Classes)))
	return rep, nil
}

// Render formats the report: one row per bug class plus the campaign
// table.
func Render(rep *Report) string {
	tb := texttable.New("Class", "Guided execs", "Blind execs", "Ratio", "Censored (g/b)")
	for _, row := range rep.Classes {
		tb.Add(row.Class,
			fmt.Sprintf("%.1f", row.GuidedMean),
			fmt.Sprintf("%.1f", row.BlindMean),
			fmt.Sprintf("%.2fx", row.Ratio),
			fmt.Sprintf("%d/%d", row.GuidedCensored, row.BlindCensored))
	}
	out := tb.String()
	out += fmt.Sprintf("\ngeomean blind/guided executions-to-detection: %.2fx over %d campaigns/mode, budget %d\n\n",
		rep.Geomean, rep.Campaigns, rep.Budget)

	ct := texttable.New("Mode", "SeedBase", "Execs", "Detected", "Corpus", "Features", "NearMiss", "Noise")
	for _, r := range rep.Runs {
		var parts []string
		keys := make([]string, 0, len(r.Detected))
		for k := range r.Detected {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s@%d", k, r.Detected[k]))
		}
		det := ""
		for i, p := range parts {
			if i > 0 {
				det += " "
			}
			det += p
		}
		ct.Add(r.Mode, r.SeedBase, r.Executions, det, r.CorpusSize, r.Features, r.NearMiss, r.Noise)
	}
	return out + ct.String()
}

// Check is the CI gate: the guided engine must detect every class in
// every campaign (no guided censoring) and the geomean ratio must reach
// minGeomean.
func Check(rep *Report, minGeomean float64) error {
	for _, row := range rep.Classes {
		if row.GuidedCensored > 0 {
			return fmt.Errorf("fuzzbench: guided engine missed %s in %d/%d campaigns (budget %d)",
				row.Class, row.GuidedCensored, rep.Campaigns, rep.Budget)
		}
	}
	if rep.Geomean < minGeomean {
		return fmt.Errorf("fuzzbench: geomean blind/guided ratio %.2fx below the %.2fx floor",
			rep.Geomean, minGeomean)
	}
	return nil
}
