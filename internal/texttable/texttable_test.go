package texttable

import (
	"strings"
	"testing"
)

func TestAlignment(t *testing.T) {
	tb := New("Name", "Value")
	tb.Add("a", 1)
	tb.Add("longer-name", 12345)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	// The value column starts at the same offset in every row.
	idx := strings.Index(lines[0], "Value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("row 1 misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[3][idx:], "12345") {
		t.Errorf("row 2 misaligned:\n%s", out)
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("separator missing")
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("X")
	tb.Add(3.14159)
	if !strings.Contains(tb.String(), "3.14") || strings.Contains(tb.String(), "3.14159") {
		t.Errorf("float not formatted to 2 places:\n%s", tb.String())
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("A", "B")
	out := tb.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Error("header missing")
	}
}

func TestWideCellGrowsColumn(t *testing.T) {
	tb := New("H")
	tb.Add("xxxxxxxxxxxxxxxxxxxxxx")
	lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
	if len(lines[1]) < 22 {
		t.Errorf("separator did not grow: %q", lines[1])
	}
}
