// Package texttable renders aligned plain-text tables for the experiment
// CLIs and EXPERIMENTS.md.
package texttable

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// New returns a table with the given header.
func New(header ...string) *Table {
	return &Table{header: header}
}

// Add appends a row; cells are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}
