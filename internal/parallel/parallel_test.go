package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(100, Options{Workers: workers}, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	boom := errors.New("boom")
	// Items 7, 3 and 42 fail; whatever the completion order, the
	// reported failure must be item 3.
	for run := 0; run < 20; run++ {
		_, err := Map(64, Options{Workers: 8}, func(i int) (struct{}, error) {
			if i == 7 || i == 3 || i == 42 {
				return struct{}{}, boom
			}
			return struct{}{}, nil
		})
		if err == nil || !strings.HasPrefix(err.Error(), "item 3/64") {
			t.Fatalf("run %d: err = %v, want item 3/64 failure", run, err)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("error cause lost: %v", err)
		}
	}
}

func TestMapRunsAllItemsDespiteFailures(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(50, Options{Workers: 4}, func(i int) (struct{}, error) {
		ran.Add(1)
		if i%2 == 0 {
			return struct{}{}, errors.New("even")
		}
		return struct{}{}, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d items, want all 50", ran.Load())
	}
}

func TestTimeoutFailsHungItem(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	start := time.Now()
	_, err := Map(4, Options{Workers: 2, Timeout: 50 * time.Millisecond}, func(i int) (int, error) {
		if i == 1 {
			<-hang // a wedged kernel
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if !strings.HasPrefix(err.Error(), "item 1/4") {
		t.Fatalf("err = %v, want item 1 blamed", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run wedged for %v despite timeout", elapsed)
	}
}

func TestProgressMonotoneAndComplete(t *testing.T) {
	var snaps []Progress
	err := ForEach(20, Options{Workers: 5, OnProgress: func(p Progress) {
		snaps = append(snaps, p) // serialized by the pool
	}}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 20 {
		t.Fatalf("got %d progress calls, want 20", len(snaps))
	}
	for i, p := range snaps {
		if p.Done != i+1 || p.Total != 20 {
			t.Fatalf("snapshot %d: %+v not monotone", i, p)
		}
	}
	if last := snaps[len(snaps)-1]; last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
}

func TestMapZeroItems(t *testing.T) {
	got, err := Map(0, Options{}, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestPrinterThrottlesAndFinishes(t *testing.T) {
	var buf strings.Builder
	// Zero interval: every snapshot prints; the final line must show n/n.
	p := Printer(&buf, "exp", 0)
	if _, err := Map(8, Options{Workers: 2, OnProgress: p}, func(i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d lines, want 8:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[7], "exp: 8/8 (100.0%)") {
		t.Errorf("final line = %q", lines[7])
	}

	// A huge interval suppresses everything except the final line.
	buf.Reset()
	p = Printer(&buf, "exp", time.Hour)
	if _, err := Map(8, Options{Workers: 2, OnProgress: p}, func(i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "8/8") {
		t.Errorf("throttled output = %q, want single final line", buf.String())
	}
}
