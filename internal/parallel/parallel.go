// Package parallel implements the bounded worker pool that shards the
// evaluation matrices (kernel × sanitizer × repetition, corpus case ×
// tool, ...) across CPUs.
//
// The pool's contract is the one the experiment drivers need:
//
//   - shared-nothing items: fn must build everything it touches (each
//     bench item constructs its own runtime — space, shadow, heap, stack —
//     so items interact only through the machine, like SPEC rate copies);
//   - deterministic merge: results are returned ordered by item index,
//     never by completion order, and the reported error is the one with
//     the lowest index, so output is identical at any worker count;
//   - a timeout guard: a hung item fails the run instead of wedging it.
package parallel

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Progress is one progress snapshot, delivered after each completed item.
type Progress struct {
	Done, Total int
	Elapsed     time.Duration
	// ETA is the projected remaining time, extrapolated from the mean
	// per-item time so far. Zero until the first item completes.
	ETA time.Duration
}

// Options configures one pool run.
type Options struct {
	// Workers bounds concurrency; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout guards a single item. When an item exceeds it, the item
	// fails with a timeout error and its goroutine is abandoned (the
	// worker slot moves on) — a hung kernel cannot wedge the run. Zero
	// disables the guard.
	Timeout time.Duration
	// OnProgress, when non-nil, is called after every completed item.
	// Calls are serialized and Done is monotone.
	OnProgress func(Progress)
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn for every index in [0, n) across the worker pool and
// returns the n results ordered by index. All items run regardless of
// individual failures; the returned error is the failure with the lowest
// index (deterministic at any worker count). The partial result slice is
// returned even on error — slots of failed items hold the zero value.
func Map[T any](n int, opts Options, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	workers := opts.workers()
	if workers > n {
		workers = n
	}
	start := time.Now()
	var (
		mu   sync.Mutex
		done int
	)
	finish := func(i int, v T, err error) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = v
		errs[i] = err
		done++
		if opts.OnProgress != nil {
			p := Progress{Done: done, Total: n, Elapsed: time.Since(start)}
			p.ETA = p.Elapsed / time.Duration(done) * time.Duration(n-done)
			opts.OnProgress(p)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				v, err := runOne(i, opts.Timeout, fn)
				finish(i, v, err)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("item %d/%d: %w", i, n, err)
		}
	}
	return results, nil
}

// ForEach is Map for item functions with no result value.
func ForEach(n int, opts Options, fn func(i int) error) error {
	_, err := Map(n, opts, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Printer returns an OnProgress callback that writes throttled
// "label: done/total (pct) elapsed e eta t" lines to w: at most one line
// per interval, plus always the final (done == total) line. Map serializes
// OnProgress calls, so the callback needs no locking of its own.
func Printer(w io.Writer, label string, interval time.Duration) func(Progress) {
	last := time.Now()
	return func(p Progress) {
		now := time.Now()
		if p.Done < p.Total && now.Sub(last) < interval {
			return
		}
		last = now
		fmt.Fprintf(w, "%s: %d/%d (%.1f%%) elapsed %s eta %s\n",
			label, p.Done, p.Total, 100*float64(p.Done)/float64(p.Total),
			p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
	}
}

// runOne applies the timeout guard around one item.
func runOne[T any](i int, timeout time.Duration, fn func(int) (T, error)) (T, error) {
	if timeout <= 0 {
		return fn(i)
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := fn(i)
		ch <- outcome{v, err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-time.After(timeout):
		var zero T
		return zero, fmt.Errorf("timed out after %v", timeout)
	}
}
