package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 16)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.Submit(func() { n.Add(1) }) {
			t.Fatal("Submit refused on an open pool")
		}
	}
	p.Close()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d tasks, want 100", got)
	}
}

func TestPoolTrySubmitBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker, then fill the single queue slot.
	p.Submit(func() { close(started); <-release })
	<-started
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue slot should have been free")
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit accepted past the queue bound")
	}
	if got := p.QueueDepth(); got != 1 {
		t.Fatalf("QueueDepth = %d, want 1", got)
	}
	close(release)
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(1, 8)
	var n atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() { close(started); <-release; n.Add(1) })
	<-started
	for i := 0; i < 5; i++ {
		p.Submit(func() { n.Add(1) })
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	close(release)
	<-done
	if got := n.Load(); got != 6 {
		t.Fatalf("drain ran %d tasks, want 6", got)
	}
	if p.Submit(func() { n.Add(1) }) || p.TrySubmit(func() { n.Add(1) }) {
		t.Fatal("closed pool accepted a task")
	}
}

func TestPoolPanicContainment(t *testing.T) {
	p := NewPool(2, 4)
	var panics atomic.Int64
	p.OnPanic = func(v any) { panics.Add(1) }
	var ok atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		p.Submit(func() {
			if i%2 == 0 {
				panic("poisoned session")
			}
			ok.Add(1)
		})
	}
	p.Close()
	if got := ok.Load(); got != 4 {
		t.Fatalf("healthy tasks after panics = %d, want 4 (workers died?)", got)
	}
	if got := panics.Load(); got != 4 {
		t.Fatalf("OnPanic saw %d panics, want 4", got)
	}
}

func TestPoolConcurrentSubmitAndClose(t *testing.T) {
	p := NewPool(4, 2)
	var wg sync.WaitGroup
	var ran atomic.Int64
	var accepted atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if p.Submit(func() { ran.Add(1) }) {
					accepted.Add(1)
				}
			}
		}()
	}
	time.Sleep(time.Millisecond)
	p.Close()
	wg.Wait()
	// Every accepted task must have run; refused ones must not have.
	if ran.Load() != accepted.Load() {
		t.Fatalf("ran %d != accepted %d", ran.Load(), accepted.Load())
	}
}
