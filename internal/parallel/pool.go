package parallel

import (
	"runtime"
	"sync"
)

// Pool is the persistent sibling of Map: a fixed set of workers draining
// a bounded task queue, reused across many submissions instead of being
// rebuilt per experiment matrix. The service layer runs every session
// through one Pool, so the queue bound doubles as the admission-control
// backpressure point: TrySubmit refusing a task is what becomes an HTTP
// 429 upstream.
//
// Panic containment: a panicking task never kills its worker goroutine —
// the worker recovers, reports the value to OnPanic (when set), and moves
// on to the next task. Callers that need a per-task result on panic (the
// service does) should additionally recover inside the task itself.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup

	// sendMu protects sends against the channel close: submitters hold
	// the read side while sending, Close takes the write side before
	// closing, so a send can never hit a closed channel. A Submit blocked
	// on a full queue holds the read lock, which simply delays Close until
	// a worker frees a slot and the send lands.
	sendMu sync.RWMutex
	closed bool

	// OnPanic, when non-nil, receives the value of any panic a task
	// escaped with. Set it before the first Submit; it runs on the worker
	// goroutine that recovered.
	OnPanic func(v any)
}

// NewPool starts a pool with the given worker count (<= 0 means
// runtime.GOMAXPROCS(0)) and task queue capacity (<= 0 means unbuffered:
// every submission needs an idle worker).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				p.run(fn)
			}
		}()
	}
	return p
}

// run executes one task under the panic guard.
func (p *Pool) run(fn func()) {
	defer func() {
		if v := recover(); v != nil && p.OnPanic != nil {
			p.OnPanic(v)
		}
	}()
	fn()
}

// TrySubmit enqueues fn without blocking. It returns false when the queue
// is full or the pool is closed — the backpressure signal admission
// control turns into a rejection.
func (p *Pool) TrySubmit(fn func()) bool {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Submit enqueues fn, blocking while the queue is full. It returns false
// (without running fn) when the pool is closed. A task must not Submit
// into its own pool: with every worker busy and the queue full that is a
// deadlock, exactly as with any bounded executor.
func (p *Pool) Submit(fn func()) bool {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return false
	}
	p.tasks <- fn
	return true
}

// QueueDepth returns the number of tasks waiting in the queue (not yet
// picked up by a worker).
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Close stops admission, drains every queued task, and waits for all
// workers to finish — the graceful-shutdown path. Safe to call twice.
func (p *Pool) Close() {
	p.sendMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.sendMu.Unlock()
	p.wg.Wait()
}
