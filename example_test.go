package giantsan_test

import (
	"fmt"

	"giantsan"
)

// Example shows the basic detect-and-continue flow.
func Example() {
	d := giantsan.New(giantsan.Config{})
	buf, _ := d.Malloc(100)

	d.Write(buf, 0, 8, 42)
	if !d.Write(buf, 100, 1, 0xFF) {
		fmt.Println("blocked:", d.Errors()[0].Kind)
	}
	d.Free(buf)
	if _, ok := d.Read(buf, 0, 8); !ok {
		fmt.Println("blocked:", d.Errors()[1].Kind)
	}
	// Output:
	// blocked: heap-buffer-overflow
	// blocked: heap-use-after-free
}

// ExampleDetector_Fill shows the operation-level region check: one check
// protects the whole bulk operation, O(1) under GiantSan.
func ExampleDetector_Fill() {
	d := giantsan.New(giantsan.Config{})
	buf, _ := d.Malloc(1 << 16)

	before := d.Stats().ShadowLoads
	d.Fill(buf, 0, 1<<16, 0xAA)
	fmt.Println("64 KiB fill, metadata loads:", d.Stats().ShadowLoads-before)
	// Output:
	// 64 KiB fill, metadata loads: 1
}

// ExampleCursor shows §4.3's quasi-bound: a whole loop of checked
// accesses costs a handful of metadata loads.
func ExampleCursor() {
	d := giantsan.New(giantsan.Config{})
	buf, _ := d.Malloc(4096)

	cur := d.NewCursor(buf)
	before := d.Stats().ShadowLoads
	for off := int64(0); off < 4096; off += 8 {
		cur.Read(off, 8)
	}
	cur.Close()
	fmt.Println("512 checked reads, metadata loads:", d.Stats().ShadowLoads-before)
	// Output:
	// 512 checked reads, metadata loads: 3
}

// ExampleDetector_Errors shows annotated reports.
func ExampleDetector_Errors() {
	d := giantsan.New(giantsan.Config{})
	buf, _ := d.Malloc(100)
	// Write past the end; the anchored check pins the first invalid byte,
	// which is the alignment tail right at the region's end.
	d.Write(buf, 104, 4, 0)
	e := d.Errors()[0]
	fmt.Println(e.Kind, "-", e.Detail)
	// Output:
	// heap-buffer-overflow - 0 bytes to the right of 100-byte region [0x10010,0x10074)
}
