package giantsan

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	d := New(Config{})
	buf, err := d.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Write(buf, 0, 8, 42) {
		t.Fatal("in-bounds write refused")
	}
	if v, ok := d.Read(buf, 0, 8); !ok || v != 42 {
		t.Fatalf("Read = %d,%v", v, ok)
	}
	if d.Write(buf, 100, 1, 0xFF) {
		t.Fatal("overflow write allowed")
	}
	errs := d.Errors()
	if len(errs) != 1 || errs[0].Kind != "heap-buffer-overflow" || !errs[0].Spatial {
		t.Fatalf("errors: %v", errs)
	}
	d.Free(buf)
	if _, ok := d.Read(buf, 0, 8); ok {
		t.Fatal("use-after-free read allowed")
	}
	if d.ErrorCount() != 2 {
		t.Fatalf("ErrorCount = %d", d.ErrorCount())
	}
}

func TestEveryToolDetectsBasicOverflow(t *testing.T) {
	for _, tl := range []Tool{GiantSan, ASan, ASanMinus, LFP} {
		d := New(Config{Tool: tl})
		// 64 is class-exact, so even LFP catches the off-by-one.
		buf, err := d.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		d.Write(buf, 64, 1, 0)
		if d.ErrorCount() != 1 {
			t.Errorf("%v: overflow not detected", tl)
		}
	}
}

func TestAnchoredVsUnanchored(t *testing.T) {
	// Two adjacent allocations: a far overflow from the first lands in
	// the second. GiantSan (anchored) detects; ASan does not.
	mk := func(tl Tool) *Detector {
		d := New(Config{Tool: tl})
		a, _ := d.Malloc(64)
		d.Malloc(4096)
		d.Write(a, 256, 8, 1)
		return d
	}
	if mk(GiantSan).ErrorCount() == 0 {
		t.Error("GiantSan missed the redzone bypass")
	}
	if mk(ASan).ErrorCount() != 0 {
		t.Error("ASan unexpectedly caught the bypass (layout changed?)")
	}
}

func TestCursorCachesAndFinishes(t *testing.T) {
	d := New(Config{})
	buf, _ := d.Malloc(4096)
	cur := d.NewCursor(buf)
	before := d.Stats()
	for off := int64(0); off < 4096; off += 8 {
		if _, ok := cur.Read(off, 8); !ok {
			t.Fatalf("cursor read failed at %d", off)
		}
	}
	after := d.Stats()
	if hits := after.CacheHits - before.CacheHits; hits < 400 {
		t.Errorf("cache hits = %d, want most of 512 accesses", hits)
	}
	if loads := after.ShadowLoads - before.ShadowLoads; loads > 64 {
		t.Errorf("shadow loads = %d, want logarithmic", loads)
	}
	// Free mid-"loop", then Close must catch it.
	d.Free(buf)
	cur.Close()
	found := false
	for _, e := range d.Errors() {
		if e.Kind == "heap-use-after-free" {
			found = true
		}
	}
	if !found {
		t.Error("Close missed the mid-loop free")
	}
	if _, ok := cur.Read(0, 8); ok {
		t.Error("closed cursor still reads")
	}
}

func TestFillOperationLevel(t *testing.T) {
	d := New(Config{})
	buf, _ := d.Malloc(64 << 10)
	before := d.Stats()
	if !d.Fill(buf, 0, 64<<10, 0xAA) {
		t.Fatal("valid fill refused")
	}
	if loads := d.Stats().ShadowLoads - before.ShadowLoads; loads > 4 {
		t.Errorf("64KiB fill cost %d loads; the O(1) region check should need ≤ 4", loads)
	}
	if v, _ := d.Read(buf, 1000, 1); v != 0xAA {
		t.Error("fill did not write")
	}
	if d.Fill(buf, 0, 64<<10+1, 0) {
		t.Error("overflowing fill allowed")
	}
}

func TestStackLifecycle(t *testing.T) {
	d := New(Config{})
	d.PushFrame()
	local := d.Alloca(32)
	if !d.Write(local, 0, 8, 7) {
		t.Fatal("stack write refused")
	}
	d.Write(local, 32, 1, 0)
	if d.ErrorCount() != 1 {
		t.Error("stack overflow missed")
	}
	d.PopFrame()
}

func TestUseAfterReturn(t *testing.T) {
	d := New(Config{DetectUseAfterReturn: true})
	d.PushFrame()
	local := d.Alloca(32)
	d.PopFrame()
	if _, ok := d.Read(local, 0, 8); ok {
		t.Error("use-after-return read allowed")
	}
	errs := d.Errors()
	if len(errs) != 1 || errs[0].Kind != "stack-use-after-return" {
		t.Errorf("errors: %v", errs)
	}
}

func TestDoubleFreeAndInvalidFree(t *testing.T) {
	d := New(Config{})
	p, _ := d.Malloc(16)
	d.Free(p)
	d.Free(p)
	d.Free(p + 4)
	errs := d.Errors()
	if len(errs) != 2 {
		t.Fatalf("errors: %v", errs)
	}
	if errs[0].Kind != "attempting-double-free" || !errs[0].Temporal {
		t.Errorf("first: %v", errs[0])
	}
	if !strings.Contains(errs[1].Kind, "free") {
		t.Errorf("second: %v", errs[1])
	}
}

func TestErrorDetailAnnotation(t *testing.T) {
	d := New(Config{})
	buf, _ := d.Malloc(100)
	d.Write(buf, 104, 1, 0) // into the right redzone proper
	errs := d.Errors()
	if len(errs) != 1 {
		t.Fatalf("errors: %v", errs)
	}
	if !strings.Contains(errs[0].Detail, "to the right of 100-byte region") {
		t.Errorf("Detail = %q", errs[0].Detail)
	}
	if !strings.Contains(errs[0].String(), errs[0].Detail) {
		t.Error("String should include Detail")
	}
}

func TestParseTool(t *testing.T) {
	for _, name := range []string{"giantsan", "asan", "asan--", "lfp"} {
		tl, err := ParseTool(name)
		if err != nil || tl.String() != name {
			t.Errorf("ParseTool(%q) = %v, %v", name, tl, err)
		}
	}
	if _, err := ParseTool("msan"); err == nil {
		t.Error("unknown tool accepted")
	}
}

func TestResetErrors(t *testing.T) {
	d := New(Config{})
	p, _ := d.Malloc(8)
	d.Write(p, 8, 1, 0)
	if d.ErrorCount() == 0 {
		t.Fatal("no error to reset")
	}
	d.ResetErrors()
	if d.ErrorCount() != 0 || len(d.Errors()) != 0 {
		t.Error("reset failed")
	}
}

func TestRealloc(t *testing.T) {
	d := New(Config{})
	p, _ := d.Malloc(32)
	d.Write(p, 0, 8, 77)
	np, err := d.Realloc(p, 256)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Read(np, 0, 8); !ok || v != 77 {
		t.Errorf("moved contents: %d,%v", v, ok)
	}
	// The stale pointer is now a detectable dangle.
	if _, ok := d.Read(p, 0, 8); ok {
		t.Error("stale pointer readable after realloc")
	}
	// LFP has no realloc in this reproduction.
	if _, err := New(Config{Tool: LFP}).Realloc(1, 8); err == nil {
		t.Error("LFP realloc should be unsupported")
	}
}

func TestShadowDump(t *testing.T) {
	d := New(Config{})
	buf, _ := d.Malloc(68)
	dump := d.ShadowDump(buf)
	for _, want := range []string{"Shadow bytes", "Legend", "p4"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	if New(Config{Tool: ASan}).ShadowDump(buf) != "" {
		t.Error("non-GiantSan dump should be empty")
	}
}

func TestErrorString(t *testing.T) {
	e := Error{Kind: "heap-buffer-overflow", Op: "WRITE", Addr: 0x1000, Size: 4}
	if !strings.Contains(e.String(), "heap-buffer-overflow") || !strings.Contains(e.String(), "0x1000") {
		t.Errorf("String = %q", e.String())
	}
}
