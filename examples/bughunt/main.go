// Bughunt: run four planted bugs under all four sanitizers and compare
// what each catches — a miniature of the paper's detectability study
// (§5.3):
//
//  1. an off-by-one heap overflow inside the LFP rounding slack,
//  2. a large-stride overflow that jumps a 16-byte redzone,
//  3. a use-after-free on a chunk that gets reused,
//  4. a double free.
//
// GiantSan catches all four; ASan and ASan-- miss the redzone bypass (no
// anchor); LFP misses the in-slack overflow and the reused-chunk UAF.
package main

import (
	"fmt"

	"giantsan"
)

var tools = []giantsan.Tool{giantsan.GiantSan, giantsan.ASan, giantsan.ASanMinus, giantsan.LFP}

// plant runs one bug scenario on a fresh detector and reports detection.
func plant(tl giantsan.Tool, bug int) bool {
	d := giantsan.New(giantsan.Config{Tool: tl})
	switch bug {
	case 1: // off-by-one within LFP's 60→64 rounding slack
		a, _ := d.Malloc(60)
		d.Write(a, 60, 1, 1)
	case 2: // stride past the 16-byte redzone into a live neighbour
		b, _ := d.Malloc(64)
		d.Malloc(4096)
		d.Write(b, 300, 8, 2)
	case 3: // dangling read after the chunk was handed out again
		c, _ := d.Malloc(96)
		d.Free(c)
		d.Malloc(96) // LFP reuses the slot immediately; quarantine does not
		d.Read(c, 0, 8)
	case 4: // double free
		e, _ := d.Malloc(32)
		d.Free(e)
		d.Free(e)
	}
	return d.ErrorCount() > 0
}

func main() {
	labels := []string{
		"off-by-one (in LFP slack)",
		"redzone bypass (stride)",
		"UAF after chunk reuse",
		"double free",
	}
	fmt.Printf("%-28s", "bug")
	for _, tl := range tools {
		fmt.Printf("%-10s", tl)
	}
	fmt.Println()
	for i, label := range labels {
		fmt.Printf("%-28s", label)
		for _, tl := range tools {
			mark := "-"
			if plant(tl, i+1) {
				mark = "Y"
			}
			fmt.Printf("%-10s", mark)
		}
		fmt.Println()
	}
}
