// Traversal: the Figure 11 limitation study as a runnable demo. Walks a
// buffer forward, randomly and in reverse under native / GiantSan / ASan
// and prints the per-pass times plus the quasi-bound counters that explain
// them (§4.3, §5.4).
package main

import (
	"fmt"
	"time"

	"giantsan/internal/traversal"
)

func main() {
	const bufBytes = 16 << 10
	const reps = 200

	fmt.Printf("traversing a %d KiB buffer, %d passes per point\n\n", bufBytes>>10, reps)
	for _, pattern := range traversal.Patterns() {
		fmt.Printf("%s traversal:\n", pattern)
		times := map[traversal.Mode]time.Duration{}
		for _, mode := range traversal.Modes() {
			h, err := traversal.New(mode, pattern, bufBytes)
			if err != nil {
				panic(err)
			}
			h.Traverse() // warm up / converge the quasi-bound
			loads0 := h.Stats().ShadowLoads
			start := time.Now()
			for i := 0; i < reps; i++ {
				h.Traverse()
			}
			perPass := time.Since(start) / reps
			loads := (h.Stats().ShadowLoads - loads0) / reps
			times[mode] = perPass
			fmt.Printf("  %-9s %10v/pass   %6d shadow loads/pass\n", mode, perPass, loads)
		}
		fmt.Printf("  GiantSan/ASan = %.2fx\n\n",
			float64(times[traversal.GiantSan])/float64(times[traversal.ASan]))
	}
	fmt.Println("forward/random: the quasi-bound absorbs almost every check;")
	fmt.Println("reverse: each dereference re-anchors the cache (no quasi-lower-")
	fmt.Println("bound exists), so GiantSan pays more than ASan — the paper's §5.4.")
}
