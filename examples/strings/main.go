// Strings: the interposed C library functions (§4.5) over the simulated
// heap — strcpy/strcat/strlen guarded by the sanitizer's region guardian,
// which costs GiantSan O(1) metadata loads per call where ASan pays one
// load per 8 bytes.
package main

import (
	"fmt"

	"giantsan/internal/libc"
	"giantsan/internal/report"
	"giantsan/internal/rt"
	"giantsan/internal/vmem"
)

func put(env *rt.Env, p vmem.Addr, s string) {
	for i := 0; i < len(s); i++ {
		env.Space().Store8(p+vmem.Addr(i), s[i])
	}
	env.Space().Store8(p+vmem.Addr(len(s)), 0)
}

func main() {
	for _, kind := range []rt.Kind{rt.GiantSan, rt.ASan} {
		env := rt.New(rt.Config{Kind: kind, HeapBytes: 4 << 20})
		log := &report.Log{}
		lib := libc.New(env, log)

		src, _ := env.Malloc(4096 + 8)
		lib.Memset(src, 'a', 4096)
		env.Space().Store8(src+4096, 0)
		dst, _ := env.Malloc(4096 + 8)

		before := env.San().Stats().ShadowLoads
		lib.Strcpy(dst, src)
		loads := env.San().Stats().ShadowLoads - before
		n, _ := lib.Strlen(dst)
		fmt.Printf("%-8s strcpy of %d bytes: %d metadata loads\n", kind, n, loads)

		// The bug: strcat into a buffer with no room.
		small, _ := env.Malloc(16)
		put(env, small, "0123456789")
		lib.Strcat(small, src)
		if log.Total() > 0 {
			fmt.Printf("%-8s strcat overflow caught: %v\n", kind, log.Errors[0].Kind)
		}
	}
}
