// Quickstart: allocate, catch an overflow, catch a use-after-free — the
// 30-line tour of the public API.
package main

import (
	"fmt"
	"log"

	"giantsan"
)

func main() {
	d := giantsan.New(giantsan.Config{}) // GiantSan, paper defaults

	buf, err := d.Malloc(100)
	if err != nil {
		log.Fatal(err)
	}

	// In-bounds accesses work like normal memory.
	d.Write(buf, 0, 8, 0xdeadbeef)
	v, _ := d.Read(buf, 0, 8)
	fmt.Printf("read back %#x\n", v)

	// One byte past the end: detected and suppressed.
	if !d.Write(buf, 100, 1, 0xFF) {
		fmt.Println("overflow blocked:", d.Errors()[0])
	}

	// Temporal error: the freed region is quarantined and poisoned.
	d.Free(buf)
	if _, ok := d.Read(buf, 0, 8); !ok {
		fmt.Println("dangling read blocked:", d.Errors()[1])
	}

	st := d.Stats()
	fmt.Printf("checks=%d shadowLoads=%d errors=%d\n", st.Checks, st.ShadowLoads, st.Errors)
}
