// Parser: a key=value config parser whose working memory lives entirely
// on the simulated heap — the class of code (PHP, libxml2, poppler) the
// paper's Magma study draws its bugs from. The parser has a planted
// vulnerability: a key longer than the fixed key buffer overflows it,
// exactly the CVE-2018-14883 shape whose detection separates the tools in
// Table 5.
//
// Run it to see GiantSan catch the overflow on the malicious input while
// the benign input parses cleanly.
package main

import (
	"fmt"

	"giantsan"
)

const keyBufSize = 16

// parse tokenizes input into the simulated key buffer, returning the
// number of pairs parsed. The bug: no bounds check on the key length.
func parse(d *giantsan.Detector, input string) int {
	keyBuf, err := d.Malloc(keyBufSize)
	if err != nil {
		panic(err)
	}
	valBuf, _ := d.Malloc(64)
	pairs := 0
	cur := d.NewCursor(keyBuf)
	pos := 0
	for pos < len(input) {
		// Copy the key until '=' — the missing length check.
		k := 0
		for pos < len(input) && input[pos] != '=' {
			cur.Write(int64(k), 1, uint64(input[pos])) // may overflow keyBuf!
			k++
			pos++
		}
		pos++ // '='
		v := 0
		for pos < len(input) && input[pos] != '\n' {
			d.Write(valBuf, int64(v), 1, uint64(input[pos]))
			v++
			pos++
		}
		pos++ // '\n'
		pairs++
	}
	cur.Close()
	d.Free(keyBuf)
	d.Free(valBuf)
	return pairs
}

func main() {
	benign := "host=localhost\nport=8080\nuser=alice\n"
	malicious := "host=localhost\nAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA=pwned\n"

	d := giantsan.New(giantsan.Config{})
	pairs := parse(d, benign)
	fmt.Printf("benign config: %d pairs, %d errors\n", pairs, d.ErrorCount())

	d2 := giantsan.New(giantsan.Config{})
	pairs = parse(d2, malicious)
	fmt.Printf("malicious config: %d pairs, %d errors\n", pairs, d2.ErrorCount())
	if errs := d2.Errors(); len(errs) > 0 {
		fmt.Println("first report:", errs[0])
		fmt.Print(d2.ShadowDump(errs[0].Addr))
	}
}
