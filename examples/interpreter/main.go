// Interpreter: a tiny byte-code VM whose memory is fully guarded by the
// public API — the perlbench-style workload the paper's history caching
// (§4.3) was designed for.
//
// The VM runs a register machine over a simulated tape:
//
//	opcode 0: tape[ptr] += reg
//	opcode 1: reg = tape[ptr]
//	opcode 2: ptr = (ptr + reg) mod tapeLen   (data-dependent movement!)
//	opcode 3: reg ^= pc
//
// Every tape access goes through a Cursor (quasi-bound), so the
// data-dependent pointer movement that defeats static loop analysis still
// costs almost no metadata loads. The program ends with an out-of-bounds
// "bug" to show detection inside a cached loop.
package main

import (
	"fmt"
	"log"

	"giantsan"
)

func main() {
	d := giantsan.New(giantsan.Config{})

	const tapeLen = 8 << 10
	const codeLen = 4 << 10

	tape, err := d.Malloc(tapeLen)
	if err != nil {
		log.Fatal(err)
	}
	code, err := d.Malloc(codeLen)
	if err != nil {
		log.Fatal(err)
	}
	// "Load" a program: opcode stream derived from a tiny PRNG.
	rng := uint64(0x1234567)
	for i := int64(0); i < codeLen; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		d.Write(code, i, 1, rng&3)
	}

	// Execute with cursors guarding both buffers.
	codeCur := d.NewCursor(code)
	tapeCur := d.NewCursor(tape)
	var reg, ptr uint64
	for pc := int64(0); pc < codeLen; pc++ {
		op, ok := codeCur.Read(pc, 1)
		if !ok {
			log.Fatalf("code fetch failed at pc=%d", pc)
		}
		switch op {
		case 0:
			v, _ := tapeCur.Read(int64(ptr), 8)
			tapeCur.Write(int64(ptr), 8, v+reg)
		case 1:
			reg, _ = tapeCur.Read(int64(ptr), 8)
		case 2:
			ptr = (ptr + reg) % (tapeLen - 8)
			ptr &^= 7
		case 3:
			reg ^= uint64(pc)
		}
	}
	codeCur.Close()
	tapeCur.Close()

	st := d.Stats()
	fmt.Printf("executed %d opcodes\n", codeLen)
	fmt.Printf("checks=%d cacheHits=%d refills=%d shadowLoads=%d\n",
		st.Checks, st.CacheHits, st.CacheRefills, st.ShadowLoads)
	fmt.Printf("(the quasi-bound turned ~%d%% of checks into zero-load hits)\n",
		100*st.CacheHits/st.Checks)

	// The planted bug: an interpreter escape writing past the tape.
	bugCur := d.NewCursor(tape)
	if !bugCur.Write(tapeLen+8, 8, 0x41414141) {
		fmt.Println("escape blocked:", d.Errors()[0])
	}
	bugCur.Close()
}
