// Command shadowviz visualizes GiantSan's folded-segment shadow encoding
// for an allocation — a textual rendition of the paper's Figure 5.
//
// Usage:
//
//	shadowviz -size 68
//	shadowviz -size 68 -compare   # side by side with ASan's encoding
package main

import (
	"flag"
	"fmt"
	"os"

	"giantsan/internal/asan"
	"giantsan/internal/core"
	"giantsan/internal/vmem"
)

func main() {
	size := flag.Uint64("size", 68, "object size in bytes")
	compare := flag.Bool("compare", false, "also show ASan's encoding")
	flag.Parse()
	if *size == 0 || *size > 1<<20 {
		fmt.Fprintln(os.Stderr, "shadowviz: size must be in 1..1MiB")
		os.Exit(2)
	}

	sp := vmem.NewSpace(((*size/8 + 4) * 8) * 2)
	base := sp.Base()

	g := core.New(sp)
	g.MarkAllocated(base, *size)
	segs := int((*size + 7) / 8)

	fmt.Printf("object of %d bytes = %d full segment(s)", *size, int(*size/8))
	if rem := *size % 8; rem != 0 {
		fmt.Printf(" + a %d-partial segment", rem)
	}
	fmt.Println()
	fmt.Println("\nGiantSan folded-segment encoding (Definition 1, Figure 5):")
	sh := g.Shadow()
	for i, code := range sh.Snapshot(sh.Index(base), segs) {
		var desc string
		switch {
		case core.IsFolded(code):
			d := core.Degree(code)
			desc = fmt.Sprintf("(%d)-folded: next %d bytes addressable", d, core.SummaryBytes(code))
		case core.IsPartial(code):
			desc = fmt.Sprintf("%d-partial: first %d bytes addressable", core.PartialK(code), core.PartialK(code))
		default:
			desc = "error code"
		}
		fmt.Printf("  seg %3d  m=%3d  %s\n", i, code, desc)
	}

	if *compare {
		a := asan.New(sp)
		a.MarkAllocated(base, *size)
		fmt.Println("\nASan encoding (Example 1):")
		ash := a.Shadow()
		for i, code := range ash.Snapshot(ash.Index(base), segs) {
			desc := "good: all 8 bytes addressable"
			if code != 0 {
				desc = fmt.Sprintf("%d-partial: first %d bytes addressable", code, code)
			}
			fmt.Printf("  seg %3d  m=%3d  %s\n", i, code, desc)
		}
		fmt.Printf("\nChecking the whole object: GiantSan loads ≤ 4 shadow bytes; ASan loads %d.\n", segs)
	}
}
