// Command giantbench regenerates the paper's performance tables and
// figures: Table 2 (with the ablation columns), Figure 10 and Figure 11.
//
// Usage:
//
//	giantbench -exp table2 [-scale N] [-reps N]
//	giantbench -exp ablation
//	giantbench -exp fig10
//	giantbench -exp fig11
//	giantbench -exp all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"giantsan/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, ablation, fig10, fig11, redzone, quarantine, all")
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "repetitions per measurement (median)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables (table2, ablation, fig10)")
	flag.Parse()

	emitJSON := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "giantbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table2", func() error {
		rows, err := bench.Table2(*scale, *reps, false)
		if err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(struct {
				Rows     []bench.Table2Row  `json:"rows"`
				GeoMeans map[string]float64 `json:"geoMeans"`
			}{rows, bench.GeoMeans(rows)})
		}
		fmt.Println("Table 2 — runtime overhead vs native (SPEC-like kernels)")
		fmt.Println(bench.RenderTable2(rows, false))
		return nil
	})
	run("ablation", func() error {
		rows, err := bench.Table2(*scale, *reps, true)
		if err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(struct {
				Rows     []bench.Table2Row  `json:"rows"`
				GeoMeans map[string]float64 `json:"geoMeans"`
			}{rows, bench.GeoMeans(rows)})
		}
		fmt.Println("Table 2 (ablation) — CacheOnly / EliminationOnly columns")
		fmt.Println(bench.RenderTable2(rows, true))
		return nil
	})
	run("fig10", func() error {
		rows, err := bench.Fig10(*scale)
		if err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(rows)
		}
		fmt.Println("Figure 10 — proportion of memory instructions per protection category")
		fmt.Println(bench.RenderFig10(rows))
		return nil
	})
	run("redzone", func() error {
		rows, err := bench.RedzoneAblation(*scale)
		if err != nil {
			return err
		}
		fmt.Println("Redzone trade-off (§4.4.1) — time and live-population footprint")
		fmt.Println(bench.RenderRedzone(rows))
		return nil
	})
	run("quarantine", func() error {
		rows, err := bench.QuarantineAblation([]uint64{96, 960, 9600, 96000, 1 << 20}, 200)
		if err != nil {
			return err
		}
		fmt.Println("Quarantine-bypass study (§5.4) — dangling-pointer detection vs budget")
		fmt.Println(bench.RenderQuarantine(rows))
		return nil
	})
	run("fig11", func() error {
		pts, err := bench.Fig11([]uint64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}, 50**reps)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig11(pts))
		return nil
	})
}
