// Command giantbench regenerates the paper's performance tables and
// figures: Table 2 (with the ablation columns), Figure 10 and Figure 11.
//
// Usage:
//
//	giantbench -exp table2 [-scale N] [-reps N]
//	giantbench -exp ablation
//	giantbench -exp fig10
//	giantbench -exp fig11
//	giantbench -exp hotpath [-hotpath-out BENCH_hotpath.json]
//	giantbench -exp metapath [-metapath-out BENCH_metapath.json]
//	giantbench -exp tiers [-tiers-out BENCH_tiers.json] [-tiers-check]
//	giantbench -exp shards [-shards-out BENCH_shards.json] [-shards-check]
//	giantbench -exp federation [-federation-out BENCH_federation.json] [-federation-check]
//	giantbench -exp canary [-canary-programs N] [-canary-plant NAME]
//	giantbench -exp fuzz [-fuzz-out BENCH_fuzz.json] [-fuzz-check]
//	giantbench -exp all
//
// -hotpath is shorthand for -exp hotpath: it microbenchmarks the checker
// hot paths (ns/check and shadow-loads/check per sanitizer × access shape,
// including the reference-path rows the speedup is measured against) and
// writes BENCH_hotpath.json.
//
// -metapath is shorthand for -exp metapath: the write-side twin. It
// microbenchmarks the allocation metadata path (ns per allocate/release
// operation and shadow-stores/op per sanitizer × size class × churn
// pattern, against the reference poisoner path) and writes
// BENCH_metapath.json. -metapath-min F fails the run when a GiantSan
// churn's geomean fast-vs-reference speedup lands below F (the CI sanity
// gate).
//
// -exp tiers measures the service's sanitization-tier ladder (full →
// elim → cheap → sampled): virtual-clock ns/session over a workload mix
// against planted-bug detection rate on the progen corpus, written to
// BENCH_tiers.json — the cost/coverage curve behind load-driven tier
// downgrade. -tiers-check fails the run unless cost is strictly monotone
// down the ladder and detection never increases (the CI gate).
//
// -exp shards measures the service's horizontal scale-out: a tenant
// batch routed through real consistent-hash ShardSets at increasing
// shard counts, billed on the virtual clock (makespan = the slowest
// shard's summed bill), plus the forked-arena residency table (resident
// shadow bytes vs pages dirtied), written to BENCH_shards.json. The run
// itself fails if any session's outcome differs between shard counts —
// the sharding determinism contract. -shards-check additionally fails
// the run unless the highest shard count reaches -shards-min speedup
// and residency is exactly proportional to dirtied pages (the CI gate).
//
// -exp federation measures the multi-process scale-out one level above
// shards: the same tenant batch routed by a real federation front-end
// (RemoteBackend) across 1/2/4 live backend servers, each itself a 2-way
// ShardSet, billed on the virtual clock (makespan = the slowest
// backend×shard lane's summed bill), plus the proxy hop's measured
// wall-clock overhead and a kill-one-backend failover table, written to
// BENCH_federation.json. The run fails if any session's outcome differs
// between backend counts. -federation-check additionally fails the run
// unless 2 backends reach -federation-min2 and 4 reach -federation-min4
// speedup, and failover loses zero sessions while remapping only the
// killed backend's tenants (the CI gate).
//
// -exp canary runs the differential validation campaign (the offline
// twin of the service's always-on canary): N generator-wheel programs,
// each recorded and triple-replayed under the fast path, the reference
// path and the byte-granular oracle. Per-seed runs are pure and merged
// in seed order, so under the virtual clock the report is byte-identical
// at any -parallel level. With no -canary-plant, any discrepancy fails
// the run (exit 1) — that is the CI determinism/agreement gate. It is
// not part of -exp all; ask for it by name.
//
// -exp fuzz runs the sanitizer-guided fuzzing benchmark: several guided
// and blind greybox campaigns (internal/fuzz) with matching seeds and
// budgets, comparing executions-to-detection per bug class. The report —
// per-class blind/guided ratios and their geometric mean, all on the
// virtual clock and byte-identical at any -parallel level — is written
// to BENCH_fuzz.json. -fuzz-check fails the run unless the guided
// engine detects every class in every campaign and the geomean ratio
// reaches -fuzz-min (the CI gate).
//
// Engine flags:
//
//	-parallel N          worker count for the experiment matrix
//	                     (default 0 = GOMAXPROCS); every work item runs
//	                     in its own shared-nothing runtime and results
//	                     are merged in matrix order, so the output is
//	                     identical at any -parallel level
//	-timeout D           per-item guard (e.g. 2m): a hung kernel fails
//	                     the run instead of wedging it (default off)
//	-clock virtual|wall  timing source for table2/ablation/fig11.
//	                     "virtual" (the default) bills each run's counted
//	                     work at fixed latencies, making timing tables
//	                     byte-identical across runs, machines and
//	                     -parallel levels; "wall" measures real time —
//	                     the paper's actual methodology, best taken with
//	                     -parallel 1
//	-quiet               suppress the progress/ETA lines on stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"giantsan/internal/bench"
	"giantsan/internal/bench/federation"
	"giantsan/internal/bench/fuzzbench"
	"giantsan/internal/bench/hotpath"
	"giantsan/internal/bench/metapath"
	"giantsan/internal/bench/shards"
	"giantsan/internal/parallel"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, ablation, fig10, fig11, redzone, quarantine, hotpath, metapath, tiers, shards, federation, canary, fuzz, all")
	scale := flag.Int("scale", 1, "workload scale factor")
	reps := flag.Int("reps", 3, "repetitions per measurement (median)")
	hotpathFlag := flag.Bool("hotpath", false, "shorthand for -exp hotpath")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "output path for the hotpath report")
	hotpathPasses := flag.Int("hotpath-passes", 0, "passes per hotpath shape; 0 = default")
	metapathFlag := flag.Bool("metapath", false, "shorthand for -exp metapath")
	metapathOut := flag.String("metapath-out", "BENCH_metapath.json", "output path for the metapath report")
	metapathOps := flag.Int("metapath-ops", 0, "operations per metapath batch; 0 = default")
	metapathMin := flag.Float64("metapath-min", 0, "fail unless every GiantSan churn speedup ≥ this floor; 0 disables")
	tiersOut := flag.String("tiers-out", "BENCH_tiers.json", "output path for the tiers report")
	tiersSeeds := flag.Int("tiers-seeds", 0, "planted-bug corpus seeds for the tiers suite; 0 = default")
	tiersCheck := flag.Bool("tiers-check", false, "fail unless tier cost is strictly monotone down the ladder and detection never increases")
	shardsOut := flag.String("shards-out", "BENCH_shards.json", "output path for the shards report")
	shardsTenants := flag.Int("shards-tenants", 0, "tenant population for the shards scaling batch; 0 = default")
	shardsCheck := flag.Bool("shards-check", false, "fail unless the highest shard count reaches -shards-min speedup and forked-arena residency is proportional to dirtied pages")
	shardsMin := flag.Float64("shards-min", 3.0, "minimum virtual-clock speedup -shards-check demands of the highest shard count")
	federationOut := flag.String("federation-out", "BENCH_federation.json", "output path for the federation report")
	federationTenants := flag.Int("federation-tenants", 0, "tenant population for the federation routed batch; 0 = default")
	federationCheck := flag.Bool("federation-check", false, "fail unless routed makespan reaches -federation-min2/-federation-min4 speedups and failover is lossless with ~1/N remap")
	federationMin2 := flag.Float64("federation-min2", 1.8, "minimum routed-batch speedup -federation-check demands at 2 backends")
	federationMin4 := flag.Float64("federation-min4", 3.0, "minimum routed-batch speedup -federation-check demands at 4 backends")
	fuzzOut := flag.String("fuzz-out", "BENCH_fuzz.json", "output path for the fuzzing benchmark report")
	fuzzCampaigns := flag.Int("fuzz-campaigns", 0, "campaigns per mode for the fuzzing benchmark; 0 = default")
	fuzzBudget := flag.Int("fuzz-budget", 0, "execution budget per fuzzing campaign; 0 = default")
	fuzzCheck := flag.Bool("fuzz-check", false, "fail unless guided detects every bug class and the blind/guided geomean reaches -fuzz-min")
	fuzzMin := flag.Float64("fuzz-min", 1.5, "minimum geomean executions-to-detection ratio -fuzz-check demands")
	canaryPrograms := flag.Int("canary-programs", 200, "generated programs for the canary campaign")
	canaryPlant := flag.String("canary-plant", "", "inject a named fast-path mutation into the canary campaign")
	canaryOut := flag.String("canary-out", "", "optional output path for the canary campaign JSON report")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables (table2, ablation, fig10)")
	par := flag.Int("parallel", 0, "matrix worker count; 0 = GOMAXPROCS")
	timeout := flag.Duration("timeout", 0, "per-item timeout guard; 0 disables")
	clock := flag.String("clock", "virtual", "timing source: virtual (deterministic cost model) or wall")
	quiet := flag.Bool("quiet", false, "suppress progress/ETA lines on stderr")
	flag.Parse()
	if *hotpathFlag {
		*exp = "hotpath"
	}
	if *metapathFlag {
		*exp = "metapath"
	}

	if *clock != "virtual" && *clock != "wall" {
		fmt.Fprintf(os.Stderr, "giantbench: -clock must be virtual or wall, got %q\n", *clock)
		os.Exit(2)
	}
	engine := func(name string) bench.Options {
		o := bench.Options{
			Parallel:    *par,
			Timeout:     *timeout,
			VirtualTime: *clock == "virtual",
		}
		if !*quiet {
			o.Progress = parallel.Printer(os.Stderr, "giantbench: "+name, 500*time.Millisecond)
		}
		return o
	}

	emitJSON := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "giantbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	table2 := func(name string, ablation bool, caption string) {
		run(name, func() error {
			res, err := bench.Table2Run(*scale, *reps, ablation, engine(name))
			if err != nil {
				return err
			}
			if *asJSON {
				return emitJSON(struct {
					Rows     []bench.Table2Row  `json:"rows"`
					GeoMeans map[string]float64 `json:"geoMeans"`
				}{res.Rows, bench.GeoMeans(res.Rows)})
			}
			fmt.Println(caption)
			fmt.Println(bench.RenderTable2(res.Rows, ablation))
			return nil
		})
	}
	table2("table2", false, "Table 2 — runtime overhead vs native (SPEC-like kernels)")
	table2("ablation", true, "Table 2 (ablation) — CacheOnly / EliminationOnly columns")

	run("fig10", func() error {
		rows, err := bench.Fig10Run(*scale, engine("fig10"))
		if err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(rows)
		}
		fmt.Println("Figure 10 — proportion of memory instructions per protection category")
		fmt.Println(bench.RenderFig10(rows))
		return nil
	})
	run("redzone", func() error {
		rows, err := bench.RedzoneAblation(*scale)
		if err != nil {
			return err
		}
		fmt.Println("Redzone trade-off (§4.4.1) — time and live-population footprint")
		fmt.Println(bench.RenderRedzone(rows))
		return nil
	})
	run("quarantine", func() error {
		rows, err := bench.QuarantineAblation([]uint64{96, 960, 9600, 96000, 1 << 20}, 200, engine("quarantine"))
		if err != nil {
			return err
		}
		fmt.Println("Quarantine-bypass study (§5.4) — dangling-pointer detection vs budget")
		fmt.Println(bench.RenderQuarantine(rows))
		return nil
	})
	run("hotpath", func() error {
		rep, err := hotpath.Run(*hotpathPasses)
		if err != nil {
			return err
		}
		f, err := os.Create(*hotpathOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *asJSON {
			return emitJSON(rep)
		}
		fmt.Println("Hot-path microbenchmark — ns/check and shadow-loads/check per sanitizer × shape")
		fmt.Println(hotpath.Render(rep))
		fmt.Printf("(written to %s)\n", *hotpathOut)
		return nil
	})
	run("metapath", func() error {
		rep, err := metapath.Run(*metapathOps)
		if err != nil {
			return err
		}
		f, err := os.Create(*metapathOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
		} else {
			fmt.Println("Metadata-path microbenchmark — ns/op and shadow-stores/op per sanitizer × class × churn")
			fmt.Println(metapath.Render(rep))
			fmt.Printf("(written to %s)\n", *metapathOut)
		}
		if *metapathMin > 0 {
			var keys []string
			for _, ch := range metapath.Churns() {
				keys = append(keys, "giantsan/"+ch.Name)
			}
			if err := metapath.AssertFloor(rep, *metapathMin, keys...); err != nil {
				return err
			}
		}
		return nil
	})
	run("tiers", func() error {
		rep, err := bench.TiersRun(*tiersSeeds, engine("tiers"))
		if err != nil {
			return err
		}
		f, err := os.Create(*tiersOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
		} else {
			fmt.Println("Sanitization tiers — virtual ns/session vs planted-bug detection per ladder rung")
			fmt.Println(bench.RenderTiers(rep))
			fmt.Printf("(written to %s)\n", *tiersOut)
		}
		if *tiersCheck {
			return bench.CheckMonotone(rep)
		}
		return nil
	})
	run("shards", func() error {
		rep, err := shards.Run([]int{1, 2, 4}, *shardsTenants)
		if err != nil {
			return err
		}
		f, err := os.Create(*shardsOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
		} else {
			fmt.Println("Service scale-out — virtual-clock makespan per shard count, forked-arena shadow residency")
			fmt.Println(shards.Render(rep))
			fmt.Printf("(written to %s)\n", *shardsOut)
		}
		if *shardsCheck {
			return shards.Check(rep, *shardsMin)
		}
		return nil
	})
	run("federation", func() error {
		rep, err := federation.Run([]int{1, 2, 4}, *federationTenants)
		if err != nil {
			return err
		}
		f, err := os.Create(*federationOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
		} else {
			fmt.Println("Multi-process federation — routed makespan per backend count, proxy overhead, kill-one failover")
			fmt.Println(federation.Render(rep))
			fmt.Printf("(written to %s)\n", *federationOut)
		}
		if *federationCheck {
			return federation.Check(rep, *federationMin2, *federationMin4)
		}
		return nil
	})
	run("fuzz", func() error {
		rep, err := fuzzbench.Run(*fuzzCampaigns, *fuzzBudget, *par)
		if err != nil {
			return err
		}
		f, err := os.Create(*fuzzOut)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				return err
			}
		} else {
			fmt.Println("Sanitizer-guided fuzzing — executions-to-detection, guided vs blind campaigns")
			fmt.Println(fuzzbench.Render(rep))
			fmt.Printf("(written to %s)\n", *fuzzOut)
		}
		if *fuzzCheck {
			return fuzzbench.Check(rep, *fuzzMin)
		}
		return nil
	})
	// The canary campaign runs only when asked for by name: unlike the
	// paper tables it is a validation suite, and its "fail on any
	// discrepancy" exit contract should not ambush -exp all.
	if *exp == "canary" {
		rep, err := bench.CanaryRun(*canaryPrograms, *canaryPlant, "", engine("canary"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "giantbench: canary: %v\n", err)
			os.Exit(1)
		}
		if *canaryOut != "" {
			f, err := os.Create(*canaryOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "giantbench: canary: %v\n", err)
				os.Exit(1)
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				f.Close()
				fmt.Fprintf(os.Stderr, "giantbench: canary: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
		if *asJSON {
			if err := emitJSON(rep); err != nil {
				fmt.Fprintf(os.Stderr, "giantbench: canary: %v\n", err)
				os.Exit(1)
			}
		} else {
			fmt.Println("Differential validation canary — fast vs reference vs oracle over generated programs")
			fmt.Print(bench.RenderCanary(rep))
		}
		// A discrepancy with no plant is a real fast-path drift: fail the
		// run. With a plant, discrepancies are the expected outcome.
		if *canaryPlant == "" && (rep.Discrepancies > 0 || rep.Failures > 0) {
			os.Exit(1)
		}
	}

	run("fig11", func() error {
		pts, err := bench.Fig11Run([]uint64{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}, 50**reps, engine("fig11"))
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderFig11(pts))
		return nil
	})
}
