package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCanaryCleanCampaign: an honest one-shot campaign exits 0 and
// reports zero discrepancies.
func TestCanaryCleanCampaign(t *testing.T) {
	code, out, errs := runCLI(t, "-canary", "15")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	if !strings.Contains(out, "discrepancies: 0") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestCanaryPlantedCampaign: a planted campaign exits 1, reports the
// shrunk discrepancy, and writes a replayable artifact pair.
func TestCanaryPlantedCampaign(t *testing.T) {
	dir := t.TempDir()
	// 25 seeds cover the first mask-width8 trigger (seed 21).
	code, out, errs := runCLI(t, "-canary", "25", "-canary-plant", "mask-width8", "-canary-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr %q", code, errs)
	}
	if !strings.Contains(out, "1-minimal=true") || strings.Contains(out, "discrepancies: 0") {
		t.Fatalf("output:\n%s", out)
	}
	traces, _ := filepath.Glob(filepath.Join(dir, "repro-*.trace"))
	if len(traces) == 0 {
		t.Fatalf("no artifact written to %s", dir)
	}
	// The shrunk artifact must replay under plain gsan -replay: the
	// reference-visible verdict the fast path swallowed.
	rcode, rout, rerrs := runCLI(t, "-replay", traces[0], "-san", "giantsan")
	if rcode != 0 {
		t.Fatalf("replay exit %d, stderr %q", rcode, rerrs)
	}
	if !strings.Contains(rout, "1 errors") {
		t.Fatalf("artifact replay did not reproduce the verdict:\n%s", rout)
	}
}

// TestCanaryFlagValidation: unknown plants and conflicting modes are
// refused up front.
func TestCanaryFlagValidation(t *testing.T) {
	if code, _, errs := runCLI(t, "-canary", "5", "-canary-plant", "nope"); code != 2 || !strings.Contains(errs, "unknown plant") {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runCLI(t, "-canary", "5", "-list"); code != 2 || !strings.Contains(errs, "-list cannot be combined") {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runCLI(t, "-canary", "5", "-replay", "x.trace"); code != 2 || !strings.Contains(errs, "pick one mode") {
		t.Fatalf("exit %d, stderr %q", code, errs)
	}
}
