package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestConflictingFlags(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string // substring of the stderr diagnostic
	}{
		{"replay+record", []string{"-replay", "x.trace", "-record", "y.trace"}, "mutually exclusive"},
		{"list+record", []string{"-list", "-record", "y.trace"}, "-list cannot be combined"},
		{"list+replay", []string{"-list", "-replay", "x.trace"}, "-list cannot be combined"},
		{"list+serve", []string{"-list", "-serve", ":0"}, "-list cannot be combined"},
		{"serve+replay", []string{"-serve", ":0", "-replay", "x.trace"}, "pick one mode"},
		{"federate-no-serve", []string{"-federate", "http://127.0.0.1:1"}, "-federate requires -serve"},
		{"federate+shards", []string{"-serve", ":0", "-serve-shards", "2", "-federate", "http://127.0.0.1:1"}, "mutually exclusive"},
		{"federate+canary", []string{"-serve", ":0", "-serve-canary", "-federate", "http://127.0.0.1:1"}, "mutually exclusive"},
		{"federate-empty", []string{"-serve", ":0", "-federate", " , "}, "at least one backend URL"},
	} {
		code, _, errs := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if !strings.Contains(errs, tc.want) {
			t.Errorf("%s: stderr %q does not explain the conflict (want %q)", tc.name, errs, tc.want)
		}
	}
}

func TestListMode(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "505.mcf_r") {
		t.Fatalf("-list output missing workloads:\n%s", out)
	}
}

func TestUnknownInputs(t *testing.T) {
	if code, _, errs := runCLI(t, "-workload", "999.nope"); code != 2 || !strings.Contains(errs, "unknown workload") {
		t.Fatalf("unknown workload: exit %d, stderr %q", code, errs)
	}
	if code, _, errs := runCLI(t, "-workload", "523.xalancbmk_r", "-san", "valgrind"); code != 2 || !strings.Contains(errs, "unknown sanitizer") {
		t.Fatalf("unknown sanitizer: exit %d, stderr %q", code, errs)
	}
	if code, _, _ := runCLI(t, "-bogusflag"); code != 2 {
		t.Fatalf("bogus flag: exit %d, want 2", code)
	}
}

func TestRunRecordReplayRoundTrip(t *testing.T) {
	// A clean run prints its counters and exits 0.
	code, out, _ := runCLI(t, "-workload", "523.xalancbmk_r", "-san", "giantsan")
	if code != 0 || !strings.Contains(out, "errors     0") {
		t.Fatalf("run: exit %d\n%s", code, out)
	}

	// Record, then replay the trace under a different sanitizer.
	path := filepath.Join(t.TempDir(), "run.trace")
	code, out, errs := runCLI(t, "-workload", "523.xalancbmk_r", "-record", path)
	if code != 0 || !strings.Contains(out, "recorded 523.xalancbmk_r") {
		t.Fatalf("record: exit %d\nstdout %s\nstderr %s", code, out, errs)
	}
	code, out, errs = runCLI(t, "-replay", path, "-san", "asan")
	if code != 0 || !strings.Contains(out, "replayed") {
		t.Fatalf("replay: exit %d\nstdout %s\nstderr %s", code, out, errs)
	}
	if !strings.Contains(out, "0 errors") {
		t.Fatalf("replay of clean run reported errors:\n%s", out)
	}
}
