// Command gsan runs one SPEC-like workload under one sanitizer and prints
// the run's error reports and counters — the closest thing to "running a
// binary under the sanitizer" the simulation offers. It can also record a
// run to a portable memory-operation trace, replay traces under any
// sanitizer, and serve the multi-tenant sanitization service over HTTP.
//
// Usage:
//
//	gsan -workload 505.mcf_r -san giantsan [-scale N]
//	gsan -workload 505.mcf_r -tier sampled
//	gsan -workload 505.mcf_r -record run.trace
//	gsan -replay run.trace -san asan
//	gsan -serve :8080 [-serve-shards N] [-serve-workers N] [-serve-queue N]
//	     [-max-heap-bytes N] [-tier-budget-ns N] [-tier-window N] [-serve-canary]
//	gsan -serve :8080 -federate http://b1:8081,http://b2:8082
//	     [-federate-health-interval D] [-federate-connect-timeout D]
//	     [-federate-timeout D] [-federate-inflight N]
//	gsan -canary 200 [-canary-dir DIR] [-canary-plant NAME]
//	gsan -list
//
// -tier runs the workload at a rung of the service's sanitization ladder
// (full, elim, cheap, sampled) instead of naming an exact sanitizer. In
// serve mode, -tier-budget-ns and -tier-window configure the adaptive
// admission controller: tiered sessions degrade to cheaper rungs under
// queue pressure or when the rolling mean virtual bill blows the budget,
// and are only rejected with 429 when even the cheapest rung has no
// queue slot.
//
// -federate turns serve mode into a federation front-end: the process
// executes no sessions itself but routes each POST /sessions to one of
// the listed backend gsan -serve processes by consistent hash of the
// tenant — the same ring sharded deployments use in-process, one level
// up. Backends are health-checked and ejected from the ring when down or
// draining (~1/N of tenants remap, the rest stay put); a session whose
// backend connection never completed is retried once on its re-ringed
// placement, while accepted sessions are never retried. GET /metrics on
// the front-end federates the backends' metrics: aggregate gsan_*
// families that dashboards already understand plus per-backend
// gsan_backend_* families that sum exactly to them.
//
// -canary N runs a one-shot differential validation campaign: N
// generated programs, each recorded and replayed under the fast path,
// the reference path and the byte-granular oracle, with any discrepancy
// ddmin-shrunk to a 1-minimal trace. Exit status 1 means discrepancies
// were found. -serve-canary runs the same validation continuously inside
// the service, in spare worker capacity only. Divergence artifacts
// (shrunk trace + JSON description) land in -canary-dir; -canary-plant
// (or the GSAN_CANARY_PLANT environment variable) injects a deliberate
// fast-path bug, the seam the CI smoke job uses to prove the pipeline
// detects, shrinks and persists real divergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"giantsan/internal/bench"
	"giantsan/internal/canary"
	"giantsan/internal/instrument"
	"giantsan/internal/interp"
	"giantsan/internal/lfp"
	"giantsan/internal/rt"
	"giantsan/internal/service"
	"giantsan/internal/trace"
	"giantsan/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind a testable seam: parse args, dispatch one
// mode, write human output to stdout and diagnostics to stderr, return
// the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gsan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("workload", "505.mcf_r", "workload ID (see -list)")
	sanName := fs.String("san", "giantsan", "sanitizer: native, giantsan, asan, asan--, lfp, cacheonly, elimonly, fullcheck, sampled8")
	tier := fs.String("tier", "", "run at a sanitization-ladder rung (full, elim, cheap, sampled) instead of -san")
	scale := fs.Int("scale", 1, "workload scale factor")
	list := fs.Bool("list", false, "list workload IDs and exit")
	record := fs.String("record", "", "record the run to a trace file")
	replay := fs.String("replay", "", "replay a trace file instead of running a workload")
	serve := fs.String("serve", "", "serve the sanitization service on this address (e.g. :8080)")
	serveShards := fs.Int("serve-shards", 1, "serve mode: independent engine shards; sessions route by consistent hash of tenant (worker/queue totals divide across shards)")
	serveWorkers := fs.Int("serve-workers", 0, "serve mode: concurrent session executors (0 = GOMAXPROCS)")
	serveQueue := fs.Int("serve-queue", 0, "serve mode: admission queue depth (0 = 64)")
	maxHeapBytes := fs.Uint64("max-heap-bytes", 0, "serve mode: cap on a session's scaled heap (0 = 4 GiB)")
	tierBudgetNs := fs.Int64("tier-budget-ns", 0, "serve mode: per-session virtual budget driving tier downgrades (0 = off)")
	tierWindow := fs.Int("tier-window", 0, "serve mode: rolling window of sessions the budget averages over (0 = 32)")
	canaryN := fs.Int("canary", 0, "run a one-shot differential validation campaign over N generated programs")
	serveCanary := fs.Bool("serve-canary", false, "serve mode: enable the always-on differential validation canary")
	canaryDir := fs.String("canary-dir", "", "directory for canary divergence artifacts (shrunk trace + JSON)")
	canaryPlant := fs.String("canary-plant", "", "inject a named fast-path mutation into the canary (test seam; also GSAN_CANARY_PLANT)")
	canaryInterval := fs.Duration("canary-interval", 0, "serve mode: pacing between canary runs (0 = 25ms)")
	canaryMaxQueue := fs.Int("canary-max-queue", 0, "serve mode: admit canary runs only while queue depth is at or below this")
	federate := fs.String("federate", "", "serve mode: run as a federation front-end routing sessions to these comma-separated backend gsan -serve URLs instead of executing locally")
	federateHealthInterval := fs.Duration("federate-health-interval", 0, "federation: pacing of the backend /healthz sweep (0 = 1s)")
	federateConnectTimeout := fs.Duration("federate-connect-timeout", 0, "federation: backend dial timeout (0 = 2s)")
	federateTimeout := fs.Duration("federate-timeout", 0, "federation: end-to-end timeout for one proxied session (0 = 5m)")
	federateInflight := fs.Int("federate-inflight", 0, "federation: max concurrently proxied sessions per backend (0 = 256)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *canaryPlant == "" {
		*canaryPlant = os.Getenv("GSAN_CANARY_PLANT")
	}

	// The modes are mutually exclusive; a command line that asks for two
	// of them is a mistake, not a priority question — refuse it.
	modes := 0
	for _, on := range []bool{*list, *replay != "", *record != "", *serve != "", *canaryN > 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		switch {
		case *replay != "" && *record != "":
			fmt.Fprintln(stderr, "gsan: -replay and -record are mutually exclusive (replay consumes a trace, record produces one)")
		case *list:
			fmt.Fprintln(stderr, "gsan: -list cannot be combined with -record, -replay, -serve or -canary")
		default:
			fmt.Fprintln(stderr, "gsan: pick one mode: -list, -record, -replay, -serve or -canary")
		}
		return 2
	}
	if *canaryPlant != "" {
		if _, err := canary.PlantByName(*canaryPlant); err != nil {
			fmt.Fprintln(stderr, "gsan:", err)
			return 2
		}
	}
	var fedCfg *service.FederationConfig
	if *federate != "" {
		switch {
		case *serve == "":
			fmt.Fprintln(stderr, "gsan: -federate requires -serve (the front-end is a serve-mode deployment)")
			return 2
		case *serveShards > 1:
			fmt.Fprintln(stderr, "gsan: -federate and -serve-shards are mutually exclusive: the front-end executes nothing locally; shard the backends instead")
			return 2
		case *serveCanary:
			fmt.Fprintln(stderr, "gsan: -federate and -serve-canary are mutually exclusive: the front-end has no engine to validate; run the canary on the backends")
			return 2
		}
		cfg := service.FederationConfig{
			HealthInterval: *federateHealthInterval,
			ConnectTimeout: *federateConnectTimeout,
			RequestTimeout: *federateTimeout,
			MaxInflight:    *federateInflight,
		}
		for _, u := range strings.Split(*federate, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			// The URL doubles as the ring identity: two front-ends given the
			// same backend list agree on every tenant's placement.
			cfg.Members = append(cfg.Members, service.BackendMember{Name: u, URL: u})
		}
		if len(cfg.Members) == 0 {
			fmt.Fprintln(stderr, "gsan: -federate needs at least one backend URL")
			return 2
		}
		fedCfg = &cfg
	}

	switch {
	case *list:
		for _, w := range workload.All() {
			fmt.Fprintln(stdout, w.ID)
		}
		return 0
	case *serve != "":
		return serveHTTP(*serve, *serveShards, fedCfg, service.Config{
			Workers:        *serveWorkers,
			QueueDepth:     *serveQueue,
			MaxHeapBytes:   *maxHeapBytes,
			TierBudgetNs:   *tierBudgetNs,
			TierWindow:     *tierWindow,
			CanaryEnabled:  *serveCanary,
			CanaryDir:      *canaryDir,
			CanaryPlant:    *canaryPlant,
			CanaryInterval: *canaryInterval,
			CanaryMaxQueue: *canaryMaxQueue,
		}, stdout, stderr)
	case *canaryN > 0:
		return canaryCampaign(*canaryN, *canaryPlant, *canaryDir, stdout, stderr)
	case *replay != "":
		return replayTrace(*replay, *sanName, stdout, stderr)
	case *record != "":
		return recordRun(*id, *scale, *record, stdout, stderr)
	}

	w := workload.ByID(*id)
	if w == nil {
		fmt.Fprintf(stderr, "gsan: unknown workload %q (try -list)\n", *id)
		return 2
	}
	var cfg *bench.SanConfig
	if *tier != "" {
		sanSet := false
		fs.Visit(func(f *flag.Flag) { sanSet = sanSet || f.Name == "san" })
		if sanSet {
			fmt.Fprintln(stderr, "gsan: -tier and -san are mutually exclusive")
			return 2
		}
		tr := bench.TierByName(*tier)
		if tr == nil {
			fmt.Fprintf(stderr, "gsan: unknown tier %q (ladder: full, elim, cheap, sampled)\n", *tier)
			return 2
		}
		cfg = &tr.Config
	} else {
		cfg = bench.ConfigByLabel(*sanName)
	}
	if cfg == nil {
		fmt.Fprintf(stderr, "gsan: unknown sanitizer %q\n", *sanName)
		return 2
	}

	elapsed, res, err := bench.RunOnce(w, *cfg, *scale)
	if err != nil {
		// Workloads are clean; err means reports were raised — print them.
		fmt.Fprintf(stdout, "%v\n", err)
	}
	fmt.Fprintf(stdout, "workload   %s (scale %d)\n", w.ID, *scale)
	fmt.Fprintf(stdout, "sanitizer  %s\n", cfg.Label)
	fmt.Fprintf(stdout, "time       %v\n", elapsed)
	s := res.Stats
	fmt.Fprintf(stdout, "accesses   %d (eliminated %d, cached %d, direct %d)\n",
		s.Accesses, s.Eliminated, s.Cached, s.Direct)
	fmt.Fprintf(stdout, "checks     %d (%d range, fast %d, slow %d)\n",
		res.San.Checks, res.San.RangeChecks, res.San.FastChecks, res.San.SlowChecks)
	fmt.Fprintf(stdout, "metadata   %d shadow loads, %d cache hits, %d refills\n",
		res.San.ShadowLoads, res.San.CacheHits, res.San.CacheRefills)
	fmt.Fprintf(stdout, "checksum   %#x\n", res.Checksum)
	fmt.Fprintf(stdout, "errors     %d\n", res.Errors.Total())
	for i, e := range res.Errors.Errors {
		if i >= 10 {
			fmt.Fprintf(stdout, "  ... and %d more\n", res.Errors.Total()-10)
			break
		}
		fmt.Fprintf(stdout, "  %v\n", e)
	}
	return 0
}

// serveHTTP runs the sanitization service until SIGINT/SIGTERM, then
// drains: stop admitting, finish in-flight sessions, shut the listener
// down cleanly. shards > 1 runs a consistent-hash sharded deployment
// behind the same HTTP surface; the cfg capacity knobs are totals that
// divide across shards. A non-nil fed runs the process as a federation
// front-end instead: no local engines, sessions proxy to the backend
// processes by the same consistent-hash routing.
func serveHTTP(addr string, shards int, fed *service.FederationConfig, cfg service.Config, stdout, stderr io.Writer) int {
	var handler *service.Server
	switch {
	case fed != nil:
		rb, err := service.NewRemoteBackend(*fed)
		if err != nil {
			fmt.Fprintln(stderr, "gsan:", err)
			return 2
		}
		handler = service.NewFederatedServer(rb)
		fmt.Fprintf(stdout, "gsan: federating over %d backends, sessions route by tenant\n", len(fed.Members))
	case shards > 1:
		handler = service.NewShardedServer(service.NewShardSet(shards, cfg))
		fmt.Fprintf(stdout, "gsan: %d shards, sessions route by tenant\n", shards)
	default:
		handler = service.NewServer(service.New(cfg))
	}
	srv := &http.Server{Addr: addr, Handler: handler}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(stdout, "gsan: serving on %s (POST /sessions, GET /metrics)\n", addr)

	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "gsan: %v — draining\n", sig)
		// Close first, concurrently with the listener shutdown: Close flips
		// the backend to draining immediately, so /healthz answers 503
		// "draining" while the socket is still up and routers (or a
		// federation front-end's health sweep) can pre-drain this process
		// instead of discovering the refusal per-session.
		closed := make(chan struct{})
		go func() { handler.Close(); close(closed) }()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-closed
		return 0
	case err := <-errc:
		fmt.Fprintln(stderr, "gsan:", err)
		handler.Close()
		return 1
	}
}

// canaryCampaign runs a one-shot differential validation campaign: the
// offline twin of the service's always-on canary. Exit codes: 0 clean,
// 1 discrepancies found (or the campaign failed to run).
func canaryCampaign(programs int, plant, dir string, stdout, stderr io.Writer) int {
	rep, err := bench.CanaryRun(programs, plant, dir, bench.Options{VirtualTime: true})
	if err != nil {
		fmt.Fprintln(stderr, "gsan:", err)
		return 1
	}
	fmt.Fprint(stdout, bench.RenderCanary(rep))
	if rep.Discrepancies > 0 || rep.Failures > 0 {
		if dir != "" {
			fmt.Fprintf(stdout, "repro artifacts written to %s\n", dir)
		}
		return 1
	}
	return 0
}

// recordRun executes the workload under GiantSan with a trace recorder
// attached and writes the trace to path.
func recordRun(id string, scale int, path string, stdout, stderr io.Writer) int {
	w := workload.ByID(id)
	if w == nil {
		fmt.Fprintf(stderr, "gsan: unknown workload %q\n", id)
		return 2
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "gsan:", err)
		return 1
	}
	defer f.Close()
	tw := trace.NewWriter(f)
	inner := rt.New(rt.Config{Kind: rt.GiantSan, HeapBytes: w.HeapBytes * uint64(scale)})
	rec := trace.NewRecorder(inner, tw)
	ex, err := interp.Prepare(w.Build(scale), instrument.GiantSanProfile, rec)
	if err != nil {
		fmt.Fprintln(stderr, "gsan:", err)
		return 1
	}
	res := ex.Run()
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(stderr, "gsan:", err)
		return 1
	}
	if rec.Err() != nil {
		fmt.Fprintln(stderr, "gsan: recording:", rec.Err())
		return 1
	}
	fmt.Fprintf(stdout, "recorded %s (%d accesses, %d errors) to %s\n",
		id, res.Stats.Accesses, res.Errors.Total(), path)
	return 0
}

// replayTrace replays a trace file under the named sanitizer.
func replayTrace(path, sanName string, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "gsan:", err)
		return 1
	}
	defer f.Close()
	var run rt.Runtime
	anchored := false
	switch sanName {
	case "giantsan":
		run = rt.New(rt.Config{Kind: rt.GiantSan, HeapBytes: 64 << 20})
		anchored = true
	case "asan":
		run = rt.New(rt.Config{Kind: rt.ASan, HeapBytes: 64 << 20})
	case "asan--":
		run = rt.New(rt.Config{Kind: rt.ASanMinus, HeapBytes: 64 << 20})
	case "lfp":
		run = lfp.New(lfp.Config{HeapBytes: 64 << 20, MaxClass: 1 << 20})
		anchored = true
	default:
		fmt.Fprintf(stderr, "gsan: cannot replay under %q\n", sanName)
		return 2
	}
	res, err := trace.Replay(f, run, anchored)
	if err != nil {
		fmt.Fprintln(stderr, "gsan:", err)
		return 1
	}
	st := run.San().Stats()
	fmt.Fprintf(stdout, "replayed %d events under %s: %d errors, %d checks, %d shadow loads\n",
		res.Events, sanName, res.Errors.Total(), st.Checks, st.ShadowLoads)
	for i, e := range res.Errors.Errors {
		if i >= 5 {
			break
		}
		fmt.Fprintf(stdout, "  %v\n", e)
	}
	return 0
}
