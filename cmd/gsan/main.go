// Command gsan runs one SPEC-like workload under one sanitizer and prints
// the run's error reports and counters — the closest thing to "running a
// binary under the sanitizer" the simulation offers. It can also record a
// run to a portable memory-operation trace and replay traces under any
// sanitizer.
//
// Usage:
//
//	gsan -workload 505.mcf_r -san giantsan [-scale N]
//	gsan -workload 505.mcf_r -record run.trace
//	gsan -replay run.trace -san asan
//	gsan -list
package main

import (
	"flag"
	"fmt"
	"os"

	"giantsan/internal/bench"
	"giantsan/internal/instrument"
	"giantsan/internal/interp"
	"giantsan/internal/lfp"
	"giantsan/internal/rt"
	"giantsan/internal/trace"
	"giantsan/internal/workload"
)

func main() {
	id := flag.String("workload", "505.mcf_r", "workload ID (see -list)")
	sanName := flag.String("san", "giantsan", "sanitizer: native, giantsan, asan, asan--, lfp, cacheonly, elimonly")
	scale := flag.Int("scale", 1, "workload scale factor")
	list := flag.Bool("list", false, "list workload IDs and exit")
	record := flag.String("record", "", "record the run to a trace file")
	replay := flag.String("replay", "", "replay a trace file instead of running a workload")
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Println(w.ID)
		}
		return
	}
	if *replay != "" {
		replayTrace(*replay, *sanName)
		return
	}
	if *record != "" {
		recordRun(*id, *scale, *record)
		return
	}
	w := workload.ByID(*id)
	if w == nil {
		fmt.Fprintf(os.Stderr, "gsan: unknown workload %q (try -list)\n", *id)
		os.Exit(2)
	}
	var cfg *bench.SanConfig
	for _, c := range bench.Configs() {
		if c.Label == *sanName {
			c := c
			cfg = &c
		}
	}
	if cfg == nil {
		fmt.Fprintf(os.Stderr, "gsan: unknown sanitizer %q\n", *sanName)
		os.Exit(2)
	}

	elapsed, res, err := bench.RunOnce(w, *cfg, *scale)
	if err != nil {
		// Workloads are clean; err means reports were raised — print them.
		fmt.Printf("%v\n", err)
	}
	fmt.Printf("workload   %s (scale %d)\n", w.ID, *scale)
	fmt.Printf("sanitizer  %s\n", cfg.Label)
	fmt.Printf("time       %v\n", elapsed)
	s := res.Stats
	fmt.Printf("accesses   %d (eliminated %d, cached %d, direct %d)\n",
		s.Accesses, s.Eliminated, s.Cached, s.Direct)
	fmt.Printf("checks     %d (%d range, fast %d, slow %d)\n",
		res.San.Checks, res.San.RangeChecks, res.San.FastChecks, res.San.SlowChecks)
	fmt.Printf("metadata   %d shadow loads, %d cache hits, %d refills\n",
		res.San.ShadowLoads, res.San.CacheHits, res.San.CacheRefills)
	fmt.Printf("checksum   %#x\n", res.Checksum)
	fmt.Printf("errors     %d\n", res.Errors.Total())
	for i, e := range res.Errors.Errors {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", res.Errors.Total()-10)
			break
		}
		fmt.Printf("  %v\n", e)
	}
}

// recordRun executes the workload under GiantSan with a trace recorder
// attached and writes the trace to path.
func recordRun(id string, scale int, path string) {
	w := workload.ByID(id)
	if w == nil {
		fmt.Fprintf(os.Stderr, "gsan: unknown workload %q\n", id)
		os.Exit(2)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsan:", err)
		os.Exit(1)
	}
	defer f.Close()
	tw := trace.NewWriter(f)
	inner := rt.New(rt.Config{Kind: rt.GiantSan, HeapBytes: w.HeapBytes * uint64(scale)})
	rec := trace.NewRecorder(inner, tw)
	ex, err := interp.Prepare(w.Build(scale), instrument.GiantSanProfile, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsan:", err)
		os.Exit(1)
	}
	res := ex.Run()
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "gsan:", err)
		os.Exit(1)
	}
	if rec.Err() != nil {
		fmt.Fprintln(os.Stderr, "gsan: recording:", rec.Err())
		os.Exit(1)
	}
	fmt.Printf("recorded %s (%d accesses, %d errors) to %s\n",
		id, res.Stats.Accesses, res.Errors.Total(), path)
}

// replayTrace replays a trace file under the named sanitizer.
func replayTrace(path, sanName string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsan:", err)
		os.Exit(1)
	}
	defer f.Close()
	var run rt.Runtime
	anchored := false
	switch sanName {
	case "giantsan":
		run = rt.New(rt.Config{Kind: rt.GiantSan, HeapBytes: 64 << 20})
		anchored = true
	case "asan":
		run = rt.New(rt.Config{Kind: rt.ASan, HeapBytes: 64 << 20})
	case "asan--":
		run = rt.New(rt.Config{Kind: rt.ASanMinus, HeapBytes: 64 << 20})
	case "lfp":
		run = lfp.New(lfp.Config{HeapBytes: 64 << 20, MaxClass: 1 << 20})
		anchored = true
	default:
		fmt.Fprintf(os.Stderr, "gsan: cannot replay under %q\n", sanName)
		os.Exit(2)
	}
	res, err := trace.Replay(f, run, anchored)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsan:", err)
		os.Exit(1)
	}
	st := run.San().Stats()
	fmt.Printf("replayed %d events under %s: %d errors, %d checks, %d shadow loads\n",
		res.Events, sanName, res.Errors.Total(), st.Checks, st.ShadowLoads)
	for i, e := range res.Errors.Errors {
		if i >= 5 {
			break
		}
		fmt.Printf("  %v\n", e)
	}
}
