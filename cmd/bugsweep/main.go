// Command bugsweep regenerates the paper's detection studies: the Juliet
// suite (Table 3), the Linux Flaw Project CVEs (Table 4) and the Magma
// redzone study (Table 5).
//
// Usage:
//
//	bugsweep -suite juliet
//	bugsweep -suite flaws
//	bugsweep -suite magma
//	bugsweep -suite all
//
// Engine flags:
//
//	-parallel N  worker count for the case matrix (default 0 = GOMAXPROCS);
//	             every case runs against its own fresh tool runtimes and
//	             tallies are merged in corpus order, so each table is
//	             identical at any -parallel level
//	-timeout D   per-case guard (e.g. 30s): a hung case fails the run
//	             instead of wedging it (default off)
//	-quiet       suppress the progress/ETA lines on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"giantsan/internal/bench"
	"giantsan/internal/parallel"
)

func main() {
	suite := flag.String("suite", "all", "suite: juliet, flaws, magma, all")
	par := flag.Int("parallel", 0, "matrix worker count; 0 = GOMAXPROCS")
	timeout := flag.Duration("timeout", 0, "per-case timeout guard; 0 disables")
	quiet := flag.Bool("quiet", false, "suppress progress/ETA lines on stderr")
	flag.Parse()

	engine := func(name string) bench.Options {
		o := bench.Options{Parallel: *par, Timeout: *timeout}
		if !*quiet {
			o.Progress = parallel.Printer(os.Stderr, "bugsweep: "+name, 500*time.Millisecond)
		}
		return o
	}

	if *suite == "all" || *suite == "juliet" {
		fmt.Println("Table 3 — detection capability on the Juliet-like suite")
		fmt.Println(bench.RenderTable3Opts(engine("juliet")))
	}
	if *suite == "all" || *suite == "flaws" {
		fmt.Println("Table 4 — detection capability for Linux Flaw Project CVEs")
		fmt.Println(bench.RenderTable4Opts(engine("flaws")))
	}
	if *suite == "all" || *suite == "magma" {
		fmt.Println("Table 5 — detection under redzone settings (Magma-like corpus)")
		fmt.Println(bench.RenderTable5Opts(engine("magma")))
	}
}
