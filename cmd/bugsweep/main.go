// Command bugsweep regenerates the paper's detection studies: the Juliet
// suite (Table 3), the Linux Flaw Project CVEs (Table 4) and the Magma
// redzone study (Table 5).
//
// Usage:
//
//	bugsweep -suite juliet
//	bugsweep -suite flaws
//	bugsweep -suite magma
//	bugsweep -suite all
package main

import (
	"flag"
	"fmt"

	"giantsan/internal/bench"
)

func main() {
	suite := flag.String("suite", "all", "suite: juliet, flaws, magma, all")
	flag.Parse()

	if *suite == "all" || *suite == "juliet" {
		fmt.Println("Table 3 — detection capability on the Juliet-like suite")
		fmt.Println(bench.RenderTable3())
	}
	if *suite == "all" || *suite == "flaws" {
		fmt.Println("Table 4 — detection capability for Linux Flaw Project CVEs")
		fmt.Println(bench.RenderTable4())
	}
	if *suite == "all" || *suite == "magma" {
		fmt.Println("Table 5 — detection under redzone settings (Magma-like corpus)")
		fmt.Println(bench.RenderTable5())
	}
}
