// Command memfuzz is the front-end for the fuzzing engine (internal/fuzz).
// It has two modes:
//
// Validation mode (the default) is the blind differential fuzzer:
// randomly generated programs with by-construction ground truth executed
// under every sanitizer configuration, cross-checking three properties —
//
//  1. no false positives on clean programs,
//  2. no missed planted bugs on buggy programs,
//  3. identical program semantics (checksums) under every profile.
//
// A sweep that never exercises a planted bug exits non-zero: detecting
// nothing because there was nothing to detect proves nothing.
//
// Campaign mode (-campaign guided|blind) is the greybox engine: a
// feedback-driven mutation loop over mini-IR programs that searches for
// bugs instead of having them planted, steering on shadow-state coverage
// and the sanitizer's near-miss gradient. Findings are confirmed under
// the full differential matrix, ddmin-shrunk, and (with -artifacts)
// persisted as traces `gsan -replay` accepts.
//
// Usage:
//
//	memfuzz -n 200                  # validation: 200 clean + 200 buggy seeds
//	memfuzz -campaign guided        # greybox campaign, default budget
//	memfuzz -campaign blind -budget 2000
//	memfuzz -campaign guided -corpus DIR -artifacts DIR -json
//
// Both modes shard work across -parallel workers and fold results in
// schedule order, so output is identical at any -parallel level.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"giantsan/internal/fuzz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 100, "validation mode: seeds per mode")
	seed := fs.Int64("seed", 0, "validation starting seed / campaign seed base")
	par := fs.Int("parallel", 0, "worker count; 0 = GOMAXPROCS")
	campaign := fs.String("campaign", "", "run a greybox campaign: guided or blind (empty = validation mode)")
	budget := fs.Int("budget", 0, "campaign execution budget; 0 = default")
	seeds := fs.Int("seeds", 0, "campaign founder seeds; 0 = default")
	corpus := fs.String("corpus", "", "campaign corpus directory (loaded before, saved after)")
	artifacts := fs.String("artifacts", "", "campaign finding artifact directory")
	asJSON := fs.Bool("json", false, "campaign mode: emit the full report as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *campaign {
	case "":
		return runValidate(*n, *seed, *par, stdout, stderr)
	case "guided", "blind":
		mode := fuzz.Guided
		if *campaign == "blind" {
			mode = fuzz.Blind
		}
		return runCampaign(fuzz.Config{
			Mode:        mode,
			SeedBase:    *seed,
			Seeds:       *seeds,
			Budget:      *budget,
			Parallel:    *par,
			CorpusDir:   *corpus,
			ArtifactDir: *artifacts,
		}, *asJSON, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "memfuzz: -campaign must be guided or blind, got %q\n", *campaign)
		return 2
	}
}

func runValidate(n int, seed int64, par int, stdout, stderr io.Writer) int {
	rep, err := fuzz.Validate(n, seed, par)
	if err != nil {
		fmt.Fprintf(stderr, "memfuzz: %v\n", err)
		return 1
	}
	for _, f := range rep.Failures {
		fmt.Fprintf(stderr, "FAIL: %s\n", f)
	}
	fmt.Fprintf(stdout, "memfuzz: %d clean seeds × %d configs, %d buggy seeds × %d configs: %d failures\n",
		rep.Seeds, rep.Configs, rep.Planted, rep.Configs-1, len(rep.Failures))
	if rep.Vacuous() {
		fmt.Fprintf(stderr, "memfuzz: vacuous run: no planted bug was exercised (n=%d) — nothing was validated\n", n)
		return 1
	}
	if len(rep.Failures) > 0 {
		return 1
	}
	return 0
}

func runCampaign(cfg fuzz.Config, asJSON bool, stdout, stderr io.Writer) int {
	rep, err := fuzz.Run(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "memfuzz: %v\n", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "memfuzz: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprintf(stdout, "memfuzz: %s campaign: %d executions, %d virtual ms, corpus %d, %d features, %d near-miss runs, %d noise\n",
			rep.Mode, rep.Executions, rep.VirtualNs/1e6, rep.CorpusSize, rep.Features, rep.NearMissRuns, rep.Noise)
		for _, cls := range fuzz.Classes() {
			at := rep.Detected[cls]
			if at == 0 {
				fmt.Fprintf(stdout, "  %-16s not detected within budget\n", cls)
				continue
			}
			fmt.Fprintf(stdout, "  %-16s detected at execution %d\n", cls, at)
		}
		for _, f := range rep.Findings {
			if f.ArtifactTrace != "" {
				fmt.Fprintf(stdout, "  artifact: %s (%d events, shrunk from %d) %s\n",
					f.ArtifactTrace, f.MinEvents, f.OriginalEvents, f.ArtifactMeta)
			}
		}
	}
	// A campaign that finds nothing at all is a failed campaign: either
	// the budget is far too small or the engine regressed.
	found := 0
	for _, at := range rep.Detected {
		if at > 0 {
			found++
		}
	}
	if found == 0 {
		fmt.Fprintf(stderr, "memfuzz: campaign detected no bugs in %d executions\n", rep.Executions)
		return 1
	}
	return 0
}
