// Command memfuzz runs the differential fuzzer: randomly generated
// programs with by-construction ground truth executed under every
// sanitizer configuration, cross-checking three properties —
//
//  1. no false positives on clean programs,
//  2. no missed planted bugs on buggy programs,
//  3. identical program semantics (checksums) under every profile.
//
// Usage:
//
//	memfuzz -n 200            # 200 clean + 200 buggy seeds
//	memfuzz -n 50 -seed 1234  # deterministic start seed
package main

import (
	"flag"
	"fmt"
	"os"

	"giantsan/internal/instrument"
	"giantsan/internal/interp"
	"giantsan/internal/ir"
	"giantsan/internal/progen"
	"giantsan/internal/rt"
)

var configs = []struct {
	prof instrument.Profile
	kind rt.Kind
}{
	{instrument.Native, rt.GiantSan},
	{instrument.GiantSanProfile, rt.GiantSan},
	{instrument.CacheOnly, rt.GiantSan},
	{instrument.ElimOnly, rt.GiantSan},
	{instrument.ASanProfile, rt.ASan},
	{instrument.ASanMinusProfile, rt.ASanMinus},
}

func run(p *ir.Prog, ci int) (*interp.Result, error) {
	cfg := configs[ci]
	env := rt.New(rt.Config{Kind: cfg.kind, HeapBytes: 16 << 20})
	ex, err := interp.Prepare(p, cfg.prof, env)
	if err != nil {
		return nil, err
	}
	return ex.Run(), nil
}

func main() {
	n := flag.Int("n", 100, "seeds per mode")
	seed := flag.Int64("seed", 0, "starting seed")
	flag.Parse()

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	}

	for s := *seed; s < *seed+int64(*n); s++ {
		p := progen.Clean(s)
		var base uint64
		for ci := range configs {
			res, err := run(p, ci)
			if err != nil {
				fail("seed %d (%s): %v", s, configs[ci].prof.Name, err)
				continue
			}
			if res.Errors.Total() != 0 {
				fail("seed %d: false positive under %s: %v",
					s, configs[ci].prof.Name, res.Errors.Errors[0])
			}
			if ci == 0 {
				base = res.Checksum
			} else if res.Checksum != base {
				fail("seed %d: semantics diverge under %s", s, configs[ci].prof.Name)
			}
		}
	}

	planted := 0
	for s := *seed; s < *seed+int64(*n); s++ {
		p, ok := progen.Buggy(s)
		if !ok {
			continue
		}
		planted++
		for ci := 1; ci < len(configs); ci++ { // skip native
			res, err := run(p, ci)
			if err != nil {
				fail("seed %d (%s): %v", s, configs[ci].prof.Name, err)
				continue
			}
			if res.Errors.Total() == 0 {
				fail("seed %d: %s missed the planted bug", s, configs[ci].prof.Name)
			}
		}
	}

	fmt.Printf("memfuzz: %d clean seeds × %d configs, %d buggy seeds × %d configs: %d failures\n",
		*n, len(configs), planted, len(configs)-1, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
