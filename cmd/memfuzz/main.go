// Command memfuzz runs the differential fuzzer: randomly generated
// programs with by-construction ground truth executed under every
// sanitizer configuration, cross-checking three properties —
//
//  1. no false positives on clean programs,
//  2. no missed planted bugs on buggy programs,
//  3. identical program semantics (checksums) under every profile.
//
// Usage:
//
//	memfuzz -n 200            # 200 clean + 200 buggy seeds
//	memfuzz -n 50 -seed 1234  # deterministic start seed
//	memfuzz -parallel 4       # shard seeds across 4 workers
//
// Seeds are sharded across the worker pool (-parallel N, default
// GOMAXPROCS); every seed builds its own runtimes and failures are
// reported in seed order, so the output is identical at any -parallel
// level.
package main

import (
	"flag"
	"fmt"
	"os"

	"giantsan/internal/instrument"
	"giantsan/internal/interp"
	"giantsan/internal/ir"
	"giantsan/internal/parallel"
	"giantsan/internal/progen"
	"giantsan/internal/rt"
)

var configs = []struct {
	prof instrument.Profile
	kind rt.Kind
}{
	{instrument.Native, rt.GiantSan},
	{instrument.GiantSanProfile, rt.GiantSan},
	{instrument.CacheOnly, rt.GiantSan},
	{instrument.ElimOnly, rt.GiantSan},
	{instrument.ASanProfile, rt.ASan},
	{instrument.ASanMinusProfile, rt.ASanMinus},
}

func run(p *ir.Prog, ci int) (*interp.Result, error) {
	cfg := configs[ci]
	env := rt.New(rt.Config{Kind: cfg.kind, HeapBytes: 16 << 20})
	ex, err := interp.Prepare(p, cfg.prof, env)
	if err != nil {
		return nil, err
	}
	return ex.Run(), nil
}

// cleanSeed checks one clean seed under every configuration and returns
// the failure messages (nil when the seed passes).
func cleanSeed(s int64) []string {
	var fails []string
	p := progen.Clean(s)
	var base uint64
	for ci := range configs {
		res, err := run(p, ci)
		if err != nil {
			fails = append(fails, fmt.Sprintf("seed %d (%s): %v", s, configs[ci].prof.Name, err))
			continue
		}
		if res.Errors.Total() != 0 {
			fails = append(fails, fmt.Sprintf("seed %d: false positive under %s: %v",
				s, configs[ci].prof.Name, res.Errors.Errors[0]))
		}
		if ci == 0 {
			base = res.Checksum
		} else if res.Checksum != base {
			fails = append(fails, fmt.Sprintf("seed %d: semantics diverge under %s", s, configs[ci].prof.Name))
		}
	}
	return fails
}

// buggySeed checks one buggy seed; planted reports whether the generator
// actually emitted the bug site for this seed.
func buggySeed(s int64) (fails []string, planted bool) {
	p, ok := progen.Buggy(s)
	if !ok {
		return nil, false
	}
	for ci := 1; ci < len(configs); ci++ { // skip native
		res, err := run(p, ci)
		if err != nil {
			fails = append(fails, fmt.Sprintf("seed %d (%s): %v", s, configs[ci].prof.Name, err))
			continue
		}
		if res.Errors.Total() == 0 {
			fails = append(fails, fmt.Sprintf("seed %d: %s missed the planted bug", s, configs[ci].prof.Name))
		}
	}
	return fails, true
}

func main() {
	n := flag.Int("n", 100, "seeds per mode")
	seed := flag.Int64("seed", 0, "starting seed")
	par := flag.Int("parallel", 0, "seed worker count; 0 = GOMAXPROCS")
	flag.Parse()

	pool := parallel.Options{Workers: *par}
	type verdict struct {
		fails   []string
		planted bool
	}

	// Each seed is a shared-nothing work item (fresh runtimes per run);
	// verdicts come back in seed order, so the report is deterministic at
	// any worker count.
	clean, err := parallel.Map(*n, pool, func(i int) (verdict, error) {
		return verdict{fails: cleanSeed(*seed + int64(i))}, nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memfuzz: %v\n", err)
		os.Exit(1)
	}
	buggy, err := parallel.Map(*n, pool, func(i int) (verdict, error) {
		fails, planted := buggySeed(*seed + int64(i))
		return verdict{fails: fails, planted: planted}, nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "memfuzz: %v\n", err)
		os.Exit(1)
	}

	failures, planted := 0, 0
	for _, v := range clean {
		for _, f := range v.fails {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
	}
	for _, v := range buggy {
		if v.planted {
			planted++
		}
		for _, f := range v.fails {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
	}

	fmt.Printf("memfuzz: %d clean seeds × %d configs, %d buggy seeds × %d configs: %d failures\n",
		*n, len(configs), planted, len(configs)-1, failures)
	if failures > 0 {
		os.Exit(1)
	}
}
