package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestValidateVacuousExitsNonZero is the regression test for the vacuous
// pass: a sweep that exercises no planted bug used to exit 0, silently
// validating nothing.
func TestValidateVacuousExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI(t, "-n", "0")
	if code == 0 {
		t.Fatal("vacuous validation run (-n 0) exited 0")
	}
	if !strings.Contains(stderr, "vacuous") {
		t.Fatalf("stderr does not explain the vacuous failure: %q", stderr)
	}
}

func TestValidateSmoke(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-n", "20")
	if code != 0 {
		t.Fatalf("validation failed (%d): %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "0 failures") {
		t.Fatalf("unexpected summary: %q", stdout)
	}
}

func TestCampaignSmoke(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "artifacts")
	code, stdout, stderr := runCLI(t,
		"-campaign", "guided", "-budget", "4000", "-artifacts", art)
	if code != 0 {
		t.Fatalf("campaign failed (%d): %s%s", code, stdout, stderr)
	}
	for _, cls := range []string{"overflow", "underflow", "use-after-free", "double-free"} {
		if !strings.Contains(stdout, cls+" ") && !strings.Contains(stdout, cls+"\n") {
			t.Errorf("summary missing class %s: %q", cls, stdout)
		}
	}
	ents, err := os.ReadDir(art)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no artifacts persisted: %v", err)
	}
}

// TestCampaignJSONDeterministicAcrossParallel: the CLI-level determinism
// contract — -parallel 1 and -parallel 8 emit byte-identical JSON.
func TestCampaignJSONDeterministicAcrossParallel(t *testing.T) {
	var outs []string
	for _, par := range []string{"1", "8"} {
		code, stdout, stderr := runCLI(t,
			"-campaign", "guided", "-budget", "600", "-json", "-parallel", par)
		if code != 0 {
			t.Fatalf("-parallel %s failed (%d): %s", par, code, stderr)
		}
		outs = append(outs, stdout)
	}
	if outs[0] != outs[1] {
		t.Fatal("-parallel 1 and -parallel 8 JSON reports differ")
	}
	var rep map[string]any
	if err := json.Unmarshal([]byte(outs[0]), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
}

func TestBadCampaignFlag(t *testing.T) {
	code, _, stderr := runCLI(t, "-campaign", "wat")
	if code != 2 || !strings.Contains(stderr, "guided or blind") {
		t.Fatalf("bad -campaign not rejected: code %d, stderr %q", code, stderr)
	}
}
