// Package giantsan is a from-scratch reproduction of "GiantSan: Efficient
// Memory Sanitization with Segment Folding" (ASPLOS 2024) as a Go library
// over a simulated address space.
//
// The library bundles four complete sanitizers — GiantSan (segment
// folding, the paper's contribution), AddressSanitizer, ASan-- and the
// low-fat-pointer baseline LFP — behind one Detector API, plus the full
// evaluation harness regenerating every table and figure of the paper
// (see internal/bench, cmd/giantbench and cmd/bugsweep).
//
// A Detector owns a simulated heap and stack. Allocate with Malloc /
// Alloca, touch memory with Read / Write / Fill, and every operation is
// checked by the selected sanitizer; violations are recorded (the paper's
// halt_on_error=false mode) and the faulting operation is suppressed.
//
//	d := giantsan.New(giantsan.Config{})
//	buf, _ := d.Malloc(100)
//	d.Write(buf, 100, 1, 0xFF) // one past the end
//	fmt.Println(d.Errors()[0]) // heap-buffer-overflow: WRITE of size 1 ...
package giantsan

import (
	"errors"
	"fmt"

	"giantsan/internal/core"
	"giantsan/internal/report"
	"giantsan/internal/rt"
	"giantsan/internal/san"
	"giantsan/internal/tool"
)

// Ptr is a simulated 64-bit address returned by Malloc and Alloca.
type Ptr = uint64

// Tool selects the sanitizer implementation.
type Tool int

// Available sanitizers.
const (
	// GiantSan is the paper's segment-folding sanitizer.
	GiantSan Tool = iota
	// ASan is the AddressSanitizer baseline.
	ASan
	// ASanMinus is ASan-- (debloated check set, same runtime as ASan).
	ASanMinus
	// LFP is the low-fat-pointer baseline (rounded bounds, no shadow).
	LFP
)

func (t Tool) String() string {
	switch t {
	case GiantSan:
		return "giantsan"
	case ASan:
		return "asan"
	case ASanMinus:
		return "asan--"
	default:
		return "lfp"
	}
}

// Config parameterizes a Detector. The zero value is a GiantSan detector
// with the paper's defaults (16-byte redzones, 1 MiB quarantine).
type Config struct {
	Tool Tool
	// RedzoneBytes is the redzone size (default 16, the paper's default).
	RedzoneBytes uint64
	// HeapBytes sizes the simulated heap (default 32 MiB).
	HeapBytes uint64
	// StackBytes sizes the simulated stack (default 1 MiB).
	StackBytes uint64
	// DetectUseAfterReturn retires popped stack frames.
	DetectUseAfterReturn bool
}

// Error is one detected memory-safety violation.
type Error struct {
	// Kind is the ASan-style report name, e.g. "heap-buffer-overflow".
	Kind string
	// Op is "READ", "WRITE" or "FREE".
	Op string
	// Addr is the first faulting simulated address.
	Addr Ptr
	// Size is the access width in bytes.
	Size uint64
	// Spatial and Temporal classify the violation.
	Spatial, Temporal bool
	// Detail locates the fault relative to the nearest allocation, e.g.
	// "4 bytes to the right of 100-byte region [0x10010,0x10074)".
	Detail string
}

func (e Error) String() string {
	s := fmt.Sprintf("%s: %s of size %d at %#x", e.Kind, e.Op, e.Size, e.Addr)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Stats are the sanitizer's runtime counters.
type Stats struct {
	Checks       uint64 // runtime checks executed
	ShadowLoads  uint64 // metadata loads
	FastChecks   uint64 // GiantSan region checks satisfied by the fast path
	SlowChecks   uint64 // region checks needing the O(1) slow path
	CacheHits    uint64 // quasi-bound hits (zero metadata loads)
	CacheRefills uint64 // quasi-bound reloads
	Errors       uint64
}

// Detector is a sanitizer instance over its own simulated address space.
type Detector struct {
	cfg Config
	t   *tool.Tool
}

// New returns a ready Detector.
func New(cfg Config) *Detector {
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 32 << 20
	}
	if cfg.StackBytes == 0 {
		cfg.StackBytes = 1 << 20
	}
	return &Detector{
		cfg: cfg,
		t: tool.New(tool.Config{
			Kind:       tool.Kind(cfg.Tool),
			Redzone:    cfg.RedzoneBytes,
			HeapBytes:  cfg.HeapBytes,
			StackBytes: cfg.StackBytes,
			DetectUAR:  cfg.DetectUseAfterReturn,
		}),
	}
}

// Tool returns the active sanitizer.
func (d *Detector) Tool() Tool { return d.cfg.Tool }

// Malloc allocates size bytes on the simulated heap.
func (d *Detector) Malloc(size uint64) (Ptr, error) {
	p, err := d.t.RT.Malloc(size)
	if err != nil {
		return 0, fmt.Errorf("giantsan: %w", err)
	}
	return p, nil
}

// Free deallocates p. Invalid and double frees are recorded as errors,
// not returned: they are detections, exactly like bad accesses.
func (d *Detector) Free(p Ptr) { d.t.Record(d.t.RT.Free(p)) }

// Realloc resizes a heap allocation with C semantics: contents move to a
// fresh chunk and the old one is quarantined, so stale pointers are
// detected. Only shadow-based detectors support it (LFP's allocator has
// no realloc in this reproduction).
func (d *Detector) Realloc(p Ptr, size uint64) (Ptr, error) {
	env, ok := d.t.RT.(*rt.Env)
	if !ok {
		return 0, errors.New("giantsan: realloc unsupported by this tool")
	}
	np, rerr, err := env.Heap().Realloc(p, size)
	if err != nil {
		return 0, fmt.Errorf("giantsan: %w", err)
	}
	d.t.Record(rerr)
	return np, nil
}

// PushFrame opens a stack frame.
func (d *Detector) PushFrame() { d.t.RT.PushFrame() }

// Alloca allocates a stack local in the current frame.
func (d *Detector) Alloca(size uint64) Ptr { return d.t.RT.Alloca(size) }

// PopFrame closes the current frame.
func (d *Detector) PopFrame() { d.t.RT.PopFrame() }

// Write checks and performs a w-byte store of val at base+off. The check
// uses the sanitizer's native discipline: GiantSan and LFP anchor at base
// (§4.4.1), ASan checks the location alone. It reports whether the write
// was allowed.
func (d *Detector) Write(base Ptr, off int64, w uint64, val uint64) bool {
	if !d.check(base, off, w, report.Write) {
		return false
	}
	p := base + Ptr(off)
	sp := d.t.RT.Space()
	if w > 8 || !sp.Contains(p, w) {
		return false
	}
	sp.Store(p, w, val)
	return true
}

// Read checks and performs a w-byte load at base+off (w ≤ 8).
func (d *Detector) Read(base Ptr, off int64, w uint64) (uint64, bool) {
	if !d.check(base, off, w, report.Read) {
		return 0, false
	}
	p := base + Ptr(off)
	sp := d.t.RT.Space()
	if w > 8 || !sp.Contains(p, w) {
		return 0, false
	}
	return sp.Load(p, w), true
}

// Fill checks and memsets [base+off, base+off+n) — the operation-level
// path: one region check of any size (O(1) under GiantSan, linear under
// ASan).
func (d *Detector) Fill(base Ptr, off int64, n uint64, b byte) bool {
	l := base + Ptr(off)
	if err := d.t.RT.San().CheckRange(l, l+Ptr(n), report.Write); err != nil {
		d.t.Record(err)
		return false
	}
	sp := d.t.RT.Space()
	if !sp.Contains(l, n) {
		return false
	}
	sp.Memset(l, b, n)
	return true
}

// CheckRange checks [base+off, base+off+n) without touching memory —
// the guardian entry point library interceptors (strcpy, memcpy) use.
func (d *Detector) CheckRange(base Ptr, off int64, n uint64) bool {
	l := base + Ptr(off)
	if err := d.t.RT.San().CheckRange(l, l+Ptr(n), report.Read); err != nil {
		d.t.Record(err)
		return false
	}
	return true
}

func (d *Detector) check(base Ptr, off int64, w uint64, at report.AccessType) bool {
	p := base + Ptr(off)
	var err *report.Error
	s := d.t.RT.San()
	switch d.cfg.Tool {
	case ASan, ASanMinus:
		err = s.CheckAccess(p, w, at)
	default:
		err = s.CheckAnchored(base, p, w, at)
	}
	if err != nil {
		d.t.Record(err)
		return false
	}
	return true
}

// Cursor is a quasi-bound history cache bound to one buffer (§4.3): loop
// accesses through a Cursor skip metadata loads once the folded-segment
// bound is cached. For sanitizers without caching it degrades to plain
// checked accesses.
type Cursor struct {
	d      *Detector
	base   Ptr
	cache  san.Cache
	closed bool
}

// NewCursor returns a cursor anchored at base.
func (d *Detector) NewCursor(base Ptr) *Cursor {
	return &Cursor{d: d, base: base, cache: d.t.RT.San().NewCache()}
}

// Read performs a cached checked load at base+off.
func (c *Cursor) Read(off int64, w uint64) (uint64, bool) {
	if c.closed {
		return 0, false
	}
	if err := c.cache.CheckCached(c.base, off, w, report.Read); err != nil {
		c.d.t.Record(err)
		return 0, false
	}
	p := c.base + Ptr(off)
	sp := c.d.t.RT.Space()
	if w > 8 || !sp.Contains(p, w) {
		return 0, false
	}
	return sp.Load(p, w), true
}

// Write performs a cached checked store at base+off.
func (c *Cursor) Write(off int64, w uint64, val uint64) bool {
	if c.closed {
		return false
	}
	if err := c.cache.CheckCached(c.base, off, w, report.Write); err != nil {
		c.d.t.Record(err)
		return false
	}
	p := c.base + Ptr(off)
	sp := c.d.t.RT.Space()
	if w > 8 || !sp.Contains(p, w) {
		return false
	}
	sp.Store(p, w, val)
	return true
}

// Close runs the loop-exit check that catches a mid-loop free (§4.3) and
// retires the cursor. Further use returns failure.
func (c *Cursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if err := c.cache.Finish(c.base, report.Read); err != nil {
		c.d.t.Record(err)
	}
}

// Errors returns the violations recorded so far.
func (d *Detector) Errors() []Error {
	out := make([]Error, 0, len(d.t.Log.Errors))
	for _, e := range d.t.Log.Errors {
		out = append(out, Error{
			Kind:     e.Kind.String(),
			Op:       e.Access.String(),
			Addr:     e.Addr,
			Size:     e.Size,
			Spatial:  e.Kind.Spatial(),
			Temporal: e.Kind.Temporal(),
			Detail:   e.Context,
		})
	}
	return out
}

// ErrorCount returns the total number of violations, including any beyond
// the retained log.
func (d *Detector) ErrorCount() int { return d.t.Log.Total() }

// ResetErrors clears the log.
func (d *Detector) ResetErrors() { d.t.Log.Reset() }

// Stats returns a snapshot of the sanitizer counters.
func (d *Detector) Stats() Stats {
	s := d.t.RT.San().Stats()
	return Stats{
		Checks:       s.Checks,
		ShadowLoads:  s.ShadowLoads,
		FastChecks:   s.FastChecks,
		SlowChecks:   s.SlowChecks,
		CacheHits:    s.CacheHits,
		CacheRefills: s.CacheRefills,
		Errors:       s.Errors,
	}
}

// ShadowDump renders the shadow memory around addr in the style of ASan's
// crash reports (GiantSan detectors only; other tools return "").
func (d *Detector) ShadowDump(addr Ptr) string {
	if g, ok := d.t.RT.San().(*core.Sanitizer); ok {
		return g.DumpShadow(addr, 5)
	}
	return ""
}

// ErrUnknownTool is returned by ParseTool for unrecognized names.
var ErrUnknownTool = errors.New("giantsan: unknown tool")

// ParseTool converts a tool name ("giantsan", "asan", "asan--", "lfp").
func ParseTool(name string) (Tool, error) {
	for _, t := range []Tool{GiantSan, ASan, ASanMinus, LFP} {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownTool, name)
}
