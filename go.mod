module giantsan

go 1.22
